open Dbgp_types

type params = {
  n : int;
  tier1 : int;
  max_providers : int;
  multihome : float;
  peering : float;
}

let default =
  { n = 10_000; tier1 = 12; max_providers = 3; multihome = 0.45; peering = 0.25 }

(* ------------------------- generator ------------------------- *)

(* Preferential attachment over provider degree: new customers pick
   providers with probability proportional to [deg + 1], which is what
   produces the heavy power-law tail observed in the CAIDA
   AS-relationship snapshots — early (core) ASes accumulate thousands of
   customers while most of the graph stays single-homed stubs.

   Sampling runs on a Fenwick (binary indexed) tree over the weights so
   each pick is O(log n) instead of a linear accumulation scan — the
   difference between seconds and hours at 70k ASes.  The tree draws the
   same [1 + Prng.int total] target over the same total and resolves it
   to the same (first index whose running sum reaches the target) pick
   as the scan did, so topologies are seed-for-seed identical. *)
module Fenwick = struct
  type t = { tree : int array; mutable msb : int }

  (* All weights start at 1 (degree 0): tree.(i) holds the sum of the
     [i land -i] weights ending at 1-based position [i], which for the
     all-ones array is exactly [i land -i]. *)
  let create n =
    let tree = Array.init (n + 1) (fun i -> i land (-i)) in
    let msb = ref 1 in
    while !msb * 2 <= n do msb := !msb * 2 done;
    { tree; msb = !msb }

  let add t i delta =
    let n = Array.length t.tree - 1 in
    let i = ref (i + 1) in
    while !i <= n do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of weights in [0, bound). *)
  let prefix t bound =
    let acc = ref 0 and i = ref bound in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  (* Smallest 0-based index whose inclusive running sum reaches
     [target]; the caller guarantees [1 <= target <= prefix t bound]. *)
  let search t target =
    let n = Array.length t.tree - 1 in
    let pos = ref 0 and rem = ref target and step = ref t.msb in
    while !step > 0 do
      let next = !pos + !step in
      if next <= n && t.tree.(next) < !rem then begin
        rem := !rem - t.tree.(next);
        pos := next
      end;
      step := !step / 2
    done;
    !pos (* 1-based position is pos+1, so 0-based index is pos *)
end

(* One weighted draw among the not-[taken] ASes below [bound].  [fw]
   carries weight [deg+1] for available ASes and 0 for taken ones. *)
let pick_weighted rng fw ~bound =
  let total = Fenwick.prefix fw bound in
  if total <= 0 then None
  else begin
    let target = 1 + Prng.int rng total in
    Some (Fenwick.search fw target)
  end

let generate rng p =
  if p.n < 2 then invalid_arg "Caida.generate: need at least 2 ASes";
  if p.tier1 < 1 || p.tier1 > p.n then invalid_arg "Caida.generate: bad tier1";
  if p.max_providers < 1 then invalid_arg "Caida.generate: bad max_providers";
  if p.multihome < 0. || p.multihome >= 1. then
    invalid_arg "Caida.generate: multihome must be in [0, 1)";
  if p.peering < 0. then invalid_arg "Caida.generate: bad peering";
  let g = As_graph.create p.n in
  let deg = Array.make p.n 0 in
  (* Invariant: the Fenwick weight of [u] is [deg.(u) + 1] while [u] is
     available and 0 while taken (already picked for the current
     customer). *)
  let fw = Fenwick.create p.n in
  let taken = Array.make p.n false in
  let incr_deg u =
    deg.(u) <- deg.(u) + 1;
    if not taken.(u) then Fenwick.add fw u 1
  in
  let connect_cp ~customer ~provider =
    As_graph.add_customer_provider g ~customer ~provider;
    incr_deg customer;
    incr_deg provider
  in
  let connect_peer a b =
    As_graph.add_peering g a b;
    incr_deg a;
    incr_deg b
  in
  (* The transit-free core: a clique of mutual peers, like the CAIDA
     snapshots' tier-1 mesh.  Ids [0 .. tier1-1]. *)
  let tier1 = min p.tier1 p.n in
  for a = 0 to tier1 - 1 do
    for b = a + 1 to tier1 - 1 do
      connect_peer a b
    done
  done;
  (* Everyone else joins with one provider (guaranteeing connectivity)
     plus a geometric number of extra providers: each additional homing
     happens with probability [multihome], capped at [max_providers].
     Providers are drawn degree-proportionally from the earlier ASes. *)
  for v = max tier1 1 to p.n - 1 do
    let picked = ref [] in
    let want =
      let w = ref 1 in
      while !w < p.max_providers && Prng.float rng 1.0 < p.multihome do incr w done;
      min !w v
    in
    for _ = 1 to want do
      match pick_weighted rng fw ~bound:v with
      | Some u ->
        taken.(u) <- true;
        Fenwick.add fw u (-(deg.(u) + 1));
        picked := u :: !picked;
        connect_cp ~customer:v ~provider:u
      | None -> ()
    done;
    List.iter
      (fun u ->
        taken.(u) <- false;
        Fenwick.add fw u (deg.(u) + 1))
      !picked
  done;
  (* Settlement-free peering at the edge: roughly [peering * n] extra
     links between degree-proportionally drawn non-core ASes that have
     no relationship yet, mirroring the [a|b|0] rows of a serial-1
     file.  Peering never replaces an existing transit edge. *)
  if p.n > tier1 + 1 then begin
    let wanted = int_of_float (p.peering *. float_of_int p.n) in
    let attempts = ref (4 * wanted) in
    let added = ref 0 in
    while !added < wanted && !attempts > 0 do
      decr attempts;
      match
        ( pick_weighted rng fw ~bound:p.n,
          pick_weighted rng fw ~bound:p.n )
      with
      | Some a, Some b
        when a <> b
             && (a >= tier1 || b >= tier1)
             && As_graph.view_of g ~me:a ~neighbor:b = None ->
        connect_peer a b;
        incr added
      | _ -> ()
    done
  end;
  g

(* ------------------------- serial-1 loader ------------------------- *)

(* CAIDA AS-relationship "serial-1" format: one relationship per line,
   [provider|customer|-1] for transit and [peer|peer|0] for peering,
   [#]-prefixed comment lines.  Real snapshots name ~70-80k ASes with
   sparse 32-bit AS numbers; they are compacted to dense graph indices
   in order of first appearance. *)
let parse_serial1 text =
  let ids = Hashtbl.create 1024 in
  let order = ref [] in
  let count = ref 0 in
  let intern asn =
    match Hashtbl.find_opt ids asn with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.replace ids asn i;
      order := asn :: !order;
      i
  in
  let edges = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char '|' line with
           | a :: b :: rel :: _ -> (
             match
               (int_of_string_opt a, int_of_string_opt b, String.trim rel)
             with
             | Some a, Some b, ("-1" | "0") when a <> b ->
               let rel = if String.trim rel = "-1" then `Transit else `Peer in
               (* Left-to-right interning: tuple components evaluate
                  right-to-left, which would flip first-appearance
                  order. *)
               let ia = intern a in
               let ib = intern b in
               edges := (ia, ib, rel) :: !edges
             | _ ->
               invalid_arg
                 (Printf.sprintf "Caida.parse_serial1: bad line %d: %S"
                    !lineno line) )
           | _ ->
             invalid_arg
               (Printf.sprintf "Caida.parse_serial1: bad line %d: %S" !lineno
                  line));
  if !count < 2 then
    invalid_arg "Caida.parse_serial1: need at least two ASes";
  let g = As_graph.create !count in
  List.iter
    (fun (a, b, rel) ->
      match rel with
      | `Transit -> As_graph.add_customer_provider g ~customer:b ~provider:a
      | `Peer -> As_graph.add_peering g a b)
    (List.rev !edges);
  let asns = Array.make !count 0 in
  List.iteri (fun i asn -> asns.(!count - 1 - i) <- asn) !order;
  (g, asns)

let load_serial1 path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_serial1 (really_input_string ic (in_channel_length ic)))
