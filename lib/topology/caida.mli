(** CAIDA-style AS-relationship topologies: a power-law generator and a
    serial-1 snapshot loader.

    The CAIDA AS-relationship datasets describe the measured Internet as
    customer/provider and settlement-free peering links over ~75k ASes
    with a heavy power-law degree distribution.  This module produces
    {!As_graph.t} values of the same shape two ways:

    - {!generate}: a seeded synthetic generator — a fully peered tier-1
      clique plus degree-proportional (preferential-attachment) provider
      selection for every later AS, which yields the power-law tail; a
      configurable fraction of ASes multi-home, and extra peering links
      are sprinkled degree-proportionally.  Scales to ~10k ASes in-tree
      benchmarks comfortably.
    - {!parse_serial1} / {!load_serial1}: the real thing — CAIDA's
      serial-1 format ([provider|customer|-1], [peer|peer|0], [#]
      comments), for 70k+-AS offline snapshots. *)

type params = {
  n : int;              (** number of ASes; >= 2 *)
  tier1 : int;          (** size of the fully peered transit-free core *)
  max_providers : int;  (** multihoming cap per AS; >= 1 *)
  multihome : float;
      (** probability of each additional provider beyond the first,
          geometric, in [0, 1) *)
  peering : float;      (** extra peering links as a fraction of [n] *)
}

val default : params
(** [n = 10_000], [tier1 = 12], [max_providers = 3], [multihome = 0.45],
    [peering = 0.25] — a 10k-AS graph with CAIDA-like shape. *)

val generate : Dbgp_types.Prng.t -> params -> As_graph.t
(** Deterministic in the PRNG state.  The result is connected (every
    non-core AS reaches the core through its first provider) and the
    customer->provider orientation is acyclic (providers are always
    earlier ids).  @raise Invalid_argument on nonsensical parameters. *)

val parse_serial1 : string -> As_graph.t * int array
(** Parse the contents of a CAIDA serial-1 AS-relationship file.
    Returns the graph over dense indices plus the index -> original AS
    number mapping (first-appearance order).
    @raise Invalid_argument on malformed lines. *)

val load_serial1 : string -> As_graph.t * int array
(** {!parse_serial1} applied to a file path. *)
