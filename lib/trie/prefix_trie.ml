open Dbgp_types

(* A path-compressed (Patricia) binary trie.  Every node carries the
   full prefix it represents; children strictly extend their parent's
   prefix, and one-way chains of valueless interior nodes are never
   materialized.  The structure is canonical: a node either holds a
   value or has two non-empty children (a valueless single-child node
   collapses into that child).  An n-route table therefore uses at most
   2n-1 nodes — the property that lets million-prefix tables fit — where
   the uncompressed trie spent up to [prefix length] nodes per route on
   interior chains.

   Observable orders are unchanged from the uncompressed trie:
   {!matches} is deepest-first, {!fold}/{!bindings} ascending by
   (network, length).  Pre-order traversal (value, left, right) yields
   exactly that ascending order: a node's network is canonical (host
   bits zero), left descendants share it with further bits possibly
   set, and right descendants set bit [length], so
   value < left subtree < right subtree under {!Prefix.compare}. *)
type 'a t =
  | Empty
  | Node of { pfx : Prefix.t; v : 'a option; l : 'a t; r : 'a t }

let empty = Empty

let is_empty = function
  | Empty -> true
  | Node _ -> false

(* Smart constructor enforcing canonical form: valueless leaves vanish
   and a valueless node with a single child collapses into the child
   (which keeps its own, longer prefix). *)
let node pfx v l r =
  match (v, l, r) with
  | None, Empty, Empty -> Empty
  | None, (Node _ as c), Empty | None, Empty, (Node _ as c) -> c
  | _ -> Node { pfx; v; l; r }

let leaf pfx value = Node { pfx; v = Some value; l = Empty; r = Empty }

(* The first bit position at which [p] and [q] disagree, capped at the
   shorter length — i.e. the length of their longest common prefix.
   Networks are canonical, so a single xor finds the disagreement and a
   short scan locates it. *)
let first_diff p q =
  let lim = min (Prefix.length p) (Prefix.length q) in
  let x = Ipv4.to_int (Prefix.network p) lxor Ipv4.to_int (Prefix.network q) in
  if x = 0 then lim
  else
    let rec go i =
      if i >= lim then lim
      else if x land (1 lsl (31 - i)) <> 0 then i
      else go (i + 1)
    in
    go 0

let add p value t =
  let rec go t =
    match t with
    | Empty -> leaf p value
    | Node n ->
      let lp = Prefix.length n.pfx and lq = Prefix.length p in
      let d = first_diff n.pfx p in
      if d = lp && d = lq then Node { n with v = Some value }
      else if d = lp then
        (* [p] strictly extends the node's prefix: descend. *)
        if Prefix.bit p lp then Node { n with r = go n.r }
        else Node { n with l = go n.l }
      else if d = lq then
        (* The node's prefix strictly extends [p]: insert above. *)
        if Prefix.bit n.pfx lq then Node { pfx = p; v = Some value; l = Empty; r = t }
        else Node { pfx = p; v = Some value; l = t; r = Empty }
      else
        (* Divergence below both: branch at the common prefix. *)
        let c = Prefix.make (Prefix.network p) d in
        if Prefix.bit p d then Node { pfx = c; v = None; l = t; r = leaf p value }
        else Node { pfx = c; v = None; l = leaf p value; r = t }
  in
  go t

let update p f t =
  let rec go t =
    match t with
    | Empty -> ( match f None with None -> Empty | Some v -> leaf p v )
    | Node n -> (
      let lp = Prefix.length n.pfx and lq = Prefix.length p in
      let d = first_diff n.pfx p in
      if d = lp && d = lq then node n.pfx (f n.v) n.l n.r
      else if d = lp then
        if Prefix.bit p lp then node n.pfx n.v n.l (go n.r)
        else node n.pfx n.v (go n.l) n.r
      else
        (* [p] is absent from the trie; only an insertion changes it. *)
        match f None with
        | None -> t
        | Some v ->
          if d = lq then
            if Prefix.bit n.pfx lq then
              Node { pfx = p; v = Some v; l = Empty; r = t }
            else Node { pfx = p; v = Some v; l = t; r = Empty }
          else
            let c = Prefix.make (Prefix.network p) d in
            if Prefix.bit p d then Node { pfx = c; v = None; l = t; r = leaf p v }
            else Node { pfx = c; v = None; l = leaf p v; r = t } )
  in
  go t

let remove p t = update p (fun _ -> None) t

let find p t =
  let rec go t =
    match t with
    | Empty -> None
    | Node n ->
      let lp = Prefix.length n.pfx and lq = Prefix.length p in
      let d = first_diff n.pfx p in
      if d < lp then None
      else if lp = lq then n.v
      else go (if Prefix.bit p lp then n.r else n.l)
  in
  go t

let mem p t = Option.is_some (find p t)

let addr_bit a i = Ipv4.to_int a land (1 lsl (31 - i)) <> 0

let matches addr t =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node n ->
      (* With compression a branch taken at the parent no longer
         guarantees the child's (longer) prefix contains the address —
         check before descending further. *)
      if not (Prefix.mem addr n.pfx) then acc
      else
        let acc =
          match n.v with None -> acc | Some x -> (n.pfx, x) :: acc
        in
        let len = Prefix.length n.pfx in
        if len = 32 then acc
        else go (if addr_bit addr len then n.r else n.l) acc
  in
  go t []

let longest_match addr t =
  match matches addr t with [] -> None | best :: _ -> Some best

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node n ->
    let acc = match n.v with None -> acc | Some x -> f n.pfx x acc in
    fold f n.r (fold f n.l acc)

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let rec map f = function
  | Empty -> Empty
  | Node n ->
    Node { pfx = n.pfx; v = Option.map f n.v; l = map f n.l; r = map f n.r }

let filter pred t =
  fold (fun p v acc -> if pred p v then add p v acc else acc) t empty

let covered p t =
  let lq = Prefix.length p in
  let rec go t =
    match t with
    | Empty -> []
    | Node n ->
      let lp = Prefix.length n.pfx in
      let d = first_diff n.pfx p in
      if d = lq then
        (* The node's prefix sits inside [p]; so does its whole
           subtree.  Collect it in ascending order. *)
        List.rev (fold (fun q x acc -> (q, x) :: acc) t [])
      else if d = lp then
        (* [p] strictly extends the node's prefix: any covered binding
           lives down [p]'s branch. *)
        go (if Prefix.bit p lp then n.r else n.l)
      else []
  in
  go t
