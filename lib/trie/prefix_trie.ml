open Dbgp_types

(* A path-compressed (Patricia) binary trie.  Every node carries the
   full prefix it represents; children strictly extend their parent's
   prefix, and one-way chains of valueless interior nodes are never
   materialized.  The structure is canonical: a node either holds a
   value or has two non-empty children (a valueless single-child node
   collapses into that child).  An n-route table therefore uses at most
   2n-1 nodes — the property that lets million-prefix tables fit — where
   the uncompressed trie spent up to [prefix length] nodes per route on
   interior chains.

   Node shapes are specialized to their occupancy so the dominant
   populations pay no dead fields: a bare [Leaf] is 3 words and a
   valueless [Branch] 4, where a single uniform
   [{pfx; v option; l; r}] node spent 5 words plus a [Some] box on
   every binding.  Random full-table workloads are almost entirely
   leaves and valueless branches, so this is most of the trie's
   resident cost.  [Bnode] (a valued node with at least one child)
   covers bindings that subsume more-specific ones.

   Observable orders are unchanged from the uncompressed trie:
   {!matches} is deepest-first, {!fold}/{!bindings} ascending by
   (network, length).  Pre-order traversal (value, left, right) yields
   exactly that ascending order: a node's network is canonical (host
   bits zero), left descendants share it with further bits possibly
   set, and right descendants set bit [length], so
   value < left subtree < right subtree under {!Prefix.compare}. *)
type 'a t =
  | Empty
  | Leaf of { pfx : Prefix.t; v : 'a }
  | Branch of { pfx : Prefix.t; l : 'a t; r : 'a t } (* both non-empty *)
  | Bnode of { pfx : Prefix.t; v : 'a; l : 'a t; r : 'a t }

let empty = Empty

let is_empty = function
  | Empty -> true
  | _ -> false

let leaf pfx value = Leaf { pfx; v = value }

(* The (pfx, value, left, right) view of a non-empty node; the
   structural operations below are written against it so the insertion
   logic stays in one shape.  The tuple is transient build-path
   allocation — the read-heavy query functions match constructors
   directly instead. *)
let parts = function
  | Empty -> invalid_arg "Prefix_trie.parts: empty"
  | Leaf n -> (n.pfx, Some n.v, Empty, Empty)
  | Branch n -> (n.pfx, None, n.l, n.r)
  | Bnode n -> (n.pfx, Some n.v, n.l, n.r)

(* Smart constructor enforcing canonical form: valueless leaves vanish
   and a valueless node with a single child collapses into the child
   (which keeps its own, longer prefix). *)
let node pfx v l r =
  match (v, l, r) with
  | None, Empty, Empty -> Empty
  | None, (Leaf _ | Branch _ | Bnode _ as c), Empty
  | None, Empty, (Leaf _ | Branch _ | Bnode _ as c) -> c
  | None, l, r -> Branch { pfx; l; r }
  | Some v, Empty, Empty -> Leaf { pfx; v }
  | Some v, l, r -> Bnode { pfx; v; l; r }

(* The first bit position at which [p] and [q] disagree, capped at the
   shorter length — i.e. the length of their longest common prefix.
   Networks are canonical, so a single xor finds the disagreement and a
   short scan locates it. *)
let first_diff p q =
  let lim = min (Prefix.length p) (Prefix.length q) in
  let x = Ipv4.to_int (Prefix.network p) lxor Ipv4.to_int (Prefix.network q) in
  if x = 0 then lim
  else
    let rec go i =
      if i >= lim then lim
      else if x land (1 lsl (31 - i)) <> 0 then i
      else go (i + 1)
    in
    go 0

let add p value t =
  let rec go t =
    match t with
    | Empty -> leaf p value
    | _ ->
      let pfx, v, l, r = parts t in
      let lp = Prefix.length pfx and lq = Prefix.length p in
      let d = first_diff pfx p in
      if d = lp && d = lq then node pfx (Some value) l r
      else if d = lp then
        (* [p] strictly extends the node's prefix: descend. *)
        if Prefix.bit p lp then node pfx v l (go r)
        else node pfx v (go l) r
      else if d = lq then
        (* The node's prefix strictly extends [p]: insert above. *)
        if Prefix.bit pfx lq then Bnode { pfx = p; v = value; l = Empty; r = t }
        else Bnode { pfx = p; v = value; l = t; r = Empty }
      else
        (* Divergence below both: branch at the common prefix. *)
        let c = Prefix.make (Prefix.network p) d in
        if Prefix.bit p d then Branch { pfx = c; l = t; r = leaf p value }
        else Branch { pfx = c; l = leaf p value; r = t }
  in
  go t

let update p f t =
  let rec go t =
    match t with
    | Empty -> ( match f None with None -> Empty | Some v -> leaf p v )
    | _ -> (
      let pfx, v, l, r = parts t in
      let lp = Prefix.length pfx and lq = Prefix.length p in
      let d = first_diff pfx p in
      if d = lp && d = lq then node pfx (f v) l r
      else if d = lp then
        if Prefix.bit p lp then node pfx v l (go r)
        else node pfx v (go l) r
      else
        (* [p] is absent from the trie; only an insertion changes it. *)
        match f None with
        | None -> t
        | Some v ->
          if d = lq then
            if Prefix.bit pfx lq then
              Bnode { pfx = p; v; l = Empty; r = t }
            else Bnode { pfx = p; v; l = t; r = Empty }
          else
            let c = Prefix.make (Prefix.network p) d in
            if Prefix.bit p d then Branch { pfx = c; l = t; r = leaf p v }
            else Branch { pfx = c; l = leaf p v; r = t } )
  in
  go t

let remove p t = update p (fun _ -> None) t

let find p t =
  let rec go t =
    match t with
    | Empty -> None
    | _ ->
      let pfx, v, l, r = parts t in
      let lp = Prefix.length pfx and lq = Prefix.length p in
      let d = first_diff pfx p in
      if d < lp then None
      else if lp = lq then v
      else go (if Prefix.bit p lp then r else l)
  in
  go t

let mem p t = Option.is_some (find p t)

let addr_bit a i = Ipv4.to_int a land (1 lsl (31 - i)) <> 0

let matches addr t =
  (* With compression a branch taken at the parent no longer guarantees
     the child's (longer) prefix contains the address — check before
     descending further. *)
  let rec go t acc =
    match t with
    | Empty -> acc
    | Leaf n -> if Prefix.mem addr n.pfx then (n.pfx, n.v) :: acc else acc
    | Branch n ->
      if not (Prefix.mem addr n.pfx) then acc
      else
        let len = Prefix.length n.pfx in
        if len = 32 then acc
        else go (if addr_bit addr len then n.r else n.l) acc
    | Bnode n ->
      if not (Prefix.mem addr n.pfx) then acc
      else
        let acc = (n.pfx, n.v) :: acc in
        let len = Prefix.length n.pfx in
        if len = 32 then acc
        else go (if addr_bit addr len then n.r else n.l) acc
  in
  go t []

let longest_match addr t =
  match matches addr t with [] -> None | best :: _ -> Some best

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf n -> f n.pfx n.v acc
  | Branch n -> fold f n.r (fold f n.l acc)
  | Bnode n -> fold f n.r (fold f n.l (f n.pfx n.v acc))

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let rec map f = function
  | Empty -> Empty
  | Leaf n -> Leaf { pfx = n.pfx; v = f n.v }
  | Branch n -> Branch { pfx = n.pfx; l = map f n.l; r = map f n.r }
  | Bnode n -> Bnode { pfx = n.pfx; v = f n.v; l = map f n.l; r = map f n.r }

let filter pred t =
  fold (fun p v acc -> if pred p v then add p v acc else acc) t empty

let covered p t =
  let lq = Prefix.length p in
  let rec go t =
    match t with
    | Empty -> []
    | _ ->
      let pfx, _, l, r = parts t in
      let lp = Prefix.length pfx in
      let d = first_diff pfx p in
      if d = lq then
        (* The node's prefix sits inside [p]; so does its whole
           subtree.  Collect it in ascending order. *)
        List.rev (fold (fun q x acc -> (q, x) :: acc) t [])
      else if d = lp then
        (* [p] strictly extends the node's prefix: any covered binding
           lives down [p]'s branch. *)
        go (if Prefix.bit p lp then r else l)
      else []
  in
  go t
