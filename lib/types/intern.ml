(* Hash-consed interning for hot-path values.

   The update hot path compares path vectors and path elements
   constantly (duplicate-announce detection, decision change checks,
   export-cache lookups).  Interning maps structurally equal values to
   one physical representative so those comparisons can short-circuit
   on pointer equality, and so fanned-out announces share one copy of
   each vector instead of N.

   Tables are bounded: when a table reaches [max_size] it is reset
   wholesale.  A reset only costs future sharing — every value handed
   out remains valid and immutable — so correctness never depends on
   residency.  Resets are counted in [stats.clears]. *)

type stats = { hits : int; misses : int; size : int; clears : int }

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type value
  type t

  val create : ?max_size:int -> int -> t
  val intern : t -> value -> value
  val length : t -> int
  val clear : t -> unit
  val stats : t -> stats
end

module Make (H : HashedType) : S with type value = H.t = struct
  module T = Hashtbl.Make (H)

  type value = H.t

  type t = {
    tbl : H.t T.t;
    max_size : int;
    mutable hits : int;
    mutable misses : int;
    mutable clears : int;
  }

  let create ?(max_size = 65_536) n =
    { tbl = T.create n; max_size; hits = 0; misses = 0; clears = 0 }

  let intern t x =
    match T.find_opt t.tbl x with
    | Some y ->
      t.hits <- t.hits + 1;
      y
    | None ->
      if T.length t.tbl >= t.max_size then begin
        T.reset t.tbl;
        t.clears <- t.clears + 1
      end;
      T.add t.tbl x x;
      t.misses <- t.misses + 1;
      x

  let length t = T.length t.tbl
  let clear t = T.reset t.tbl

  let stats t =
    { hits = t.hits; misses = t.misses; size = T.length t.tbl;
      clears = t.clears }
end

(* ------------------------------------------------------------------ *)
(* Path elements.                                                      *)

module Elem_tbl = Make (struct
  type t = Path_elem.t

  (* Physical check first: re-interning an already-canonical element is
     the common case once decode and prepend both intern. *)
  let equal a b = a == b || Path_elem.equal a b
  let hash = Hashtbl.hash
end)

(* The shared tables below are domain-local (one instance per OCaml 5
   domain, created lazily on first use).  Interning is semantically
   transparent — it only decides which physical representative a
   structurally-equal value maps to — so two domains interning the same
   value independently is sound: each gets a canonical pointer for
   comparisons *within its own domain*, and cross-domain [==] simply
   degrades to the structural fallback every comparison site already
   has.  Domain-locality is what lets the sharded simulator run one
   region per domain with no locks on the update hot path. *)

let elems_key =
  Domain.DLS.new_key (fun () -> Elem_tbl.create 256)

let path_elem e = Elem_tbl.intern (Domain.DLS.get elems_key) e
let path_elem_stats () = Elem_tbl.stats (Domain.DLS.get elems_key)

(* ------------------------------------------------------------------ *)
(* Path vectors, hash-consed cons cell by cons cell so that vectors
   sharing a tail share it physically too (a prepend of an interned
   vector interns one fresh cell and reuses the rest). *)

module Vec_tbl = Make (struct
  type t = Path_elem.t list

  (* Only canonical-component cells are ever offered to this table
     ([path_vector] interns head and tail first), so equality of a cons
     cell is equality of its component pointers. *)
  let equal a b =
    a == b
    ||
    match (a, b) with
    | x :: xs, y :: ys -> x == y && xs == ys
    | _ -> false

  let hash = Hashtbl.hash
end)

let vecs_key =
  Domain.DLS.new_key (fun () -> Vec_tbl.create 1024)

let rec path_vector = function
  | [] -> []
  | e :: rest ->
    let e = path_elem e in
    let rest = path_vector rest in
    Vec_tbl.intern (Domain.DLS.get vecs_key) (e :: rest)

let path_vector_stats () = Vec_tbl.stats (Domain.DLS.get vecs_key)

(* ------------------------------------------------------------------ *)
(* Strings (descriptor field names, protocol names): small closed sets
   repeated in every advertisement. *)

module Str_tbl = Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let strs_key =
  Domain.DLS.new_key (fun () -> Str_tbl.create 64)

let string s = Str_tbl.intern (Domain.DLS.get strs_key) s
let string_stats () = Str_tbl.stats (Domain.DLS.get strs_key)

(* ------------------------------------------------------------------ *)
(* Prefixes: the destination key of every route.  A canonical prefix
   packs losslessly into one int — [network lsl 6 lor length] — and
   {!Prefix.t} *is* that pack (an immediate, unboxed value), so every
   prefix already is its own canonical representative: interning is the
   identity and costs nothing.  The function is kept so call sites read
   uniformly with the other hot-path intern points. *)

let prefix_pack p = (Ipv4.to_int (Prefix.network p) lsl 6) lor Prefix.length p

let prefix (p : Prefix.t) = p

(* ------------------------------------------------------------------ *)
(* Loop-check memo: [Path_elem.has_loop] walks the vector building
   scratch sets on every ingress filter run.  Interned vectors repeat
   physically, so a small direct-mapped identity cache answers most
   checks in O(1).  Sound for any list (the slot key is compared by
   pointer), merely ineffective for un-interned ones.  Domain-local for
   the same reason as the intern tables: the memo is a pure
   accelerator, so private per-domain copies cost only warm-up. *)

let loop_slots = 512

let loop_memo_key : (Path_elem.t list * bool) array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make loop_slots ([], false))

let has_loop = function
  | [] -> false
  | pv ->
    let loop_memo = Domain.DLS.get loop_memo_key in
    let slot = Hashtbl.hash pv land (loop_slots - 1) in
    let (key, cached) = Array.unsafe_get loop_memo slot in
    if key == pv then cached
    else begin
      let r = Path_elem.has_loop pv in
      Array.unsafe_set loop_memo slot (pv, r);
      r
    end

let clear_all () =
  Elem_tbl.clear (Domain.DLS.get elems_key);
  Vec_tbl.clear (Domain.DLS.get vecs_key);
  Str_tbl.clear (Domain.DLS.get strs_key);
  Array.fill (Domain.DLS.get loop_memo_key) 0 loop_slots ([], false)
