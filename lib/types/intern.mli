(** Hash-consed interning for hot-path values.

    Maps structurally equal values to one physical representative so
    equality checks short-circuit on [==] and fanned-out announces
    share storage.  Tables are bounded (reset wholesale at capacity);
    every interned value stays valid after a reset — only future
    sharing is lost — so callers never need to care about residency.

    The shared tables below are what the codec and speaker use; the
    {!Make} functor builds additional per-type tables.

    Domain-safety: the shared tables (and the loop memo) are
    domain-local — each OCaml 5 domain lazily creates its own instance
    on first use, so sharded simulations intern lock-free.  Interning is
    semantically transparent, so per-domain canonicalization is sound:
    values crossing domains merely lose the pointer-equality fast path
    and fall back to structural comparison.  Stats and {!clear_all}
    refer to the calling domain's tables. *)

type stats = { hits : int; misses : int; size : int; clears : int }

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type value
  type t

  val create : ?max_size:int -> int -> t
  (** [create ?max_size n] makes a table with initial capacity [n];
      when [max_size] (default 65536) entries are reached the table is
      reset wholesale. *)

  val intern : t -> value -> value
  (** Canonical representative: two structurally equal arguments return
      the same physical value while the table retains the first. *)

  val length : t -> int
  val clear : t -> unit
  val stats : t -> stats
end

module Make (H : HashedType) : S with type value = H.t

val path_elem : Path_elem.t -> Path_elem.t
(** Canonical representative of one path element. *)

val path_vector : Path_elem.t list -> Path_elem.t list
(** Canonical representative of a whole vector, hash-consed cell by
    cell: vectors sharing a structural tail share it physically, so
    prepending onto an interned vector only adds one fresh cell. *)

val string : string -> string
(** Canonical representative for small repeated strings (descriptor
    field names, protocol names). *)

val prefix : Prefix.t -> Prefix.t
(** Canonical representative of a prefix.  {!Prefix.t} is itself the
    dense-int pack ([network lsl 6 lor length]) stored unboxed, so
    every prefix is already canonical and this is the identity — kept
    so the decode paths read uniformly with the other intern points. *)

val prefix_pack : Prefix.t -> int
(** The dense-int pack itself ([network lsl 6 lor length]) — the
    compact-route-store key under which a RIB entry degenerates to an
    int pair (prefix pack, attribute-set id). *)

val has_loop : Path_elem.t list -> bool
(** [Path_elem.has_loop] behind a direct-mapped identity memo —
    repeated checks of the same (physically) vector are O(1).  Sound
    for any argument, fast for interned ones. *)

val path_elem_stats : unit -> stats
val path_vector_stats : unit -> stats
val string_stats : unit -> stats

val clear_all : unit -> unit
(** Reset every global table and the loop memo (tests, and leak-proof
    teardown paths). *)
