type t = As of Asn.t | Island of Island_id.t | As_set of Asn.t list

let as_ a = As a
let island i = Island i
let as_set asns = As_set (List.sort_uniq Asn.compare asns)

let mentions_asn a = function
  | As b -> Asn.equal a b
  | Island _ -> false
  | As_set s -> List.exists (Asn.equal a) s

let mentions_island i = function
  | Island j -> Island_id.equal i j
  | As _ | As_set _ -> false

let compare x y =
  match (x, y) with
  | As a, As b -> Asn.compare a b
  | As _, _ -> -1
  | _, As _ -> 1
  | Island a, Island b -> Island_id.compare a b
  | Island _, _ -> -1
  | _, Island _ -> 1
  | As_set a, As_set b -> List.compare Asn.compare a b

let equal x y = x == y || compare x y = 0

let to_string = function
  | As a -> Asn.to_string a
  | Island i -> Island_id.to_string i
  | As_set s -> "{" ^ String.concat "," (List.map Asn.to_string s) ^ "}"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let path_length path = List.length path

let has_loop path =
  let rec go seen_as seen_isl = function
    | [] -> false
    | As a :: rest ->
      Asn.Set.mem a seen_as || go (Asn.Set.add a seen_as) seen_isl rest
    | Island i :: rest ->
      Island_id.Set.mem i seen_isl
      || go seen_as (Island_id.Set.add i seen_isl) rest
    | As_set s :: rest ->
      List.exists (fun a -> Asn.Set.mem a seen_as) s
      || go (List.fold_left (fun acc a -> Asn.Set.add a acc) seen_as s) seen_isl rest
  in
  go Asn.Set.empty Island_id.Set.empty path

let pp_path ppf path =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp ppf path
