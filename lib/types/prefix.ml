type t = { net : Ipv4.t; len : int }

let mask len = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: bad length %d" len)
  else { net = Ipv4.of_int (Ipv4.to_int addr land mask len); len }

let network p = p.net
let length p = p.len

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string_opt s)
  | Some i ->
    let addr = String.sub s 0 i
    and len = String.sub s (i + 1) (String.length s - i - 1) in
    ( match (Ipv4.of_string_opt addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _ -> None )

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

(* Rendered on every trace emit (twice per delivered update), so the
   Printf cost is memoized behind a small direct-mapped cache; a slot
   holds the prefix whose string it stores, compared structurally (two
   int fields). *)
let ts_slots = 512
let ts_memo : (t * string) array = Array.make ts_slots ({ net = Ipv4.any; len = -1 }, "")

let to_string p =
  let slot =
    (Ipv4.to_int p.net lxor (p.len * 0x9E37_79B1)) land (ts_slots - 1)
  in
  let (p', s) = Array.unsafe_get ts_memo slot in
  if p'.len = p.len && Ipv4.to_int p'.net = Ipv4.to_int p.net then s
  else begin
    let s = Printf.sprintf "%s/%d" (Ipv4.to_string p.net) p.len in
    Array.unsafe_set ts_memo slot (p, s);
    s
  end

let pp ppf p = Format.pp_print_string ppf (to_string p)

let mem addr p = Ipv4.to_int addr land mask p.len = Ipv4.to_int p.net

let subsumes p q =
  p.len <= q.len && Ipv4.to_int q.net land mask p.len = Ipv4.to_int p.net

let bit p i =
  if i < 0 || i >= p.len then invalid_arg "Prefix.bit: index out of range"
  else Ipv4.to_int p.net land (1 lsl (31 - i)) <> 0

let compare p q =
  match Ipv4.compare p.net q.net with 0 -> Int.compare p.len q.len | c -> c

let equal p q = compare p q = 0
let hash p = Hashtbl.hash (Ipv4.to_int p.net, p.len)
let default = { net = Ipv4.any; len = 0 }

let split p =
  if p.len >= 32 then None
  else
    let lo = { net = p.net; len = p.len + 1 } in
    let hi_net = Ipv4.of_int (Ipv4.to_int p.net lor (1 lsl (31 - p.len))) in
    Some (lo, { net = hi_net; len = p.len + 1 })

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
