(* Packed immediate representation.  A prefix is canonical on
   construction (host bits below the mask are zeroed), so it fits
   losslessly in one tagged int as [network lsl 6 lor length] — 38
   bits.  Every prefix value is therefore unboxed: map keys, trie node
   labels and IA destination fields carry no per-prefix allocation,
   which is what lets a million-route RIB hold its destination keys for
   free.  The packing is order-preserving — integer comparison is
   exactly the old (network, length) lexicographic order — so every
   [Map]/[Set] iteration order is byte-for-byte what the boxed
   representation produced. *)
type t = int

let mask len = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: bad length %d" len)
  else ((Ipv4.to_int addr land mask len) lsl 6) lor len

let network p = Ipv4.of_int (p lsr 6)
let length p = p land 0x3F

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string_opt s)
  | Some i ->
    let addr = String.sub s 0 i
    and len = String.sub s (i + 1) (String.length s - i - 1) in
    ( match (Ipv4.of_string_opt addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _ -> None )

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

(* Rendered on every trace emit (twice per delivered update), so the
   Printf cost is memoized behind a small direct-mapped cache; -1 is
   not a valid pack, so it marks an empty slot. *)
let ts_slots = 512
let ts_memo : (t * string) array = Array.make ts_slots (-1, "")

let to_string p =
  let slot = ((p lsr 6) lxor ((p land 0x3F) * 0x9E37_79B1)) land (ts_slots - 1) in
  let (p', s) = Array.unsafe_get ts_memo slot in
  if p' = p then s
  else begin
    let s = Printf.sprintf "%s/%d" (Ipv4.to_string (network p)) (p land 0x3F) in
    Array.unsafe_set ts_memo slot (p, s);
    s
  end

let pp ppf p = Format.pp_print_string ppf (to_string p)

let mem addr p = Ipv4.to_int addr land mask (p land 0x3F) = p lsr 6

let subsumes p q =
  p land 0x3F <= q land 0x3F && (q lsr 6) land mask (p land 0x3F) = p lsr 6

let bit p i =
  if i < 0 || i >= p land 0x3F then invalid_arg "Prefix.bit: index out of range"
  else (p lsr 6) land (1 lsl (31 - i)) <> 0

let compare : t -> t -> int = Int.compare
let equal : t -> t -> bool = Int.equal
let hash (p : t) = Hashtbl.hash p
let default = 0

let split p =
  let len = p land 0x3F in
  if len >= 32 then None
  else
    (* Same network, length+1: the pack just increments.  The high half
       additionally sets bit [len] of the network. *)
    Some (p + 1, p + 1 + (1 lsl (31 - len + 6)))

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
