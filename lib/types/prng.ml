type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

(* [n] independent child streams in one deterministic left-to-right
   pass: child [i] is seeded from the parent's [i]-th split draw, so
   [split_n t n] is exactly [Array.init n (fun _ -> split t)] — spelled
   out as the canonical way to hand each region of a sharded simulation
   its own stream. *)
let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n: negative count"
  else Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive"
  else
    (* Rejection-free for our purposes: modulo bias is negligible for
       bounds far below 2^62. *)
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range"
  else lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Prng.sample: bad k"
  else begin
    let copy = Array.copy arr in
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = copy.(i) in
      copy.(i) <- copy.(j);
      copy.(j) <- tmp
    done;
    Array.sub copy 0 k
  end
