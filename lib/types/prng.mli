(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction — the BRITE/Waxman
    topology generator, random upgrade sets in the benefit simulations,
    synthetic workload traces — draws from this PRNG so that experiments
    are bit-reproducible across runs and machines, independent of OCaml's
    [Random] implementation. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from the current state; the parent
    advances.  Lets sub-experiments draw without perturbing each other.
    Deterministic: the child stream depends only on the parent's seed
    and how many draws/splits preceded it. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent child generators, equivalent to
    [n] successive {!split}s (the parent advances [n] times).  The
    canonical way to seed each region of a sharded simulation.
    @raise Invalid_argument on a negative count. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
val bits64 : t -> int64

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements uniformly (reservoir-free:
    partial Fisher-Yates on a copy).
    @raise Invalid_argument if [k > Array.length arr] or [k < 0]. *)
