type kind = Baseline | Critical_fix | Custom | Replacement

type t = { id : int; name : string; kind : kind }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let by_id : (int, t) Hashtbl.t = Hashtbl.create 32
let next_id = ref 0

(* Registration is rare (module init, topology build) but the registry
   is read from every domain of a sharded run, so writes are serialized
   behind a lock.  Lookups stay lock-free: register before spawning
   simulation domains and the tables are read-only thereafter. *)
let register_lock = Mutex.create ()

let register ?(kind = Custom) name =
  Mutex.protect register_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t ->
        if t.kind <> kind && kind <> Custom then
          invalid_arg
            (Printf.sprintf "Protocol_id.register: %s already registered" name)
        else t
      | None ->
        let t = { id = !next_id; name; kind } in
        incr next_id;
        Hashtbl.add registry name t;
        Hashtbl.add by_id t.id t;
        t)

let find name = Hashtbl.find_opt registry name
let name t = t.name
let kind t = t.kind
let to_int t = t.id
let of_int i = Hashtbl.find_opt by_id i
(* Identity is the *name*, never the id.  The id is a process-local
   handle (hash-table keys); decoding can lazily register never-seen
   protocol names from any simulation domain, so id allocation order
   depends on domain scheduling — an id-based order would leak that
   schedule into owner-set orderings, encoded bytes and digests. *)
let compare a b = String.compare a.name b.name
let equal a b = String.equal a.name b.name
let hash t = Hashtbl.hash t.name
let pp ppf t = Format.pp_print_string ppf t.name

let pp_kind ppf = function
  | Baseline -> Format.pp_print_string ppf "baseline"
  | Critical_fix -> Format.pp_print_string ppf "critical-fix"
  | Custom -> Format.pp_print_string ppf "custom"
  | Replacement -> Format.pp_print_string ppf "replacement"

let all () =
  Hashtbl.fold (fun _ t acc -> t :: acc) registry []
  |> List.sort compare

(* Table 1 of the paper, grouped by scenario. *)
let bgp = register ~kind:Baseline "bgp"
let bgpsec = register ~kind:Critical_fix "bgpsec"
let eq_bgp = register ~kind:Critical_fix "eq-bgp"
let lisp = register ~kind:Critical_fix "lisp"
let r_bgp = register ~kind:Critical_fix "r-bgp"
let wiser = register ~kind:Critical_fix "wiser"
let miro = register ~kind:Custom "miro"
let arrow = register ~kind:Custom "arrow"
let ron = register ~kind:Custom "ron"
let nira = register ~kind:Replacement "nira"
let scion = register ~kind:Replacement "scion"
let pathlet = register ~kind:Replacement "pathlet"
let yamr = register ~kind:Replacement "yamr"
let hlp = register ~kind:Replacement "hlp"

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
