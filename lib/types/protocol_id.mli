(** Protocol identifiers and the governing-body registry.

    Section 3.1 assumes every inter-domain routing protocol is assigned a
    unique ID by a governing body (IETF/ARIN).  We model the registry
    directly: a protocol ID is an integer paired with a registered name and
    a {!kind} recording which evolvability scenario (Section 2) the
    protocol belongs to.  Registration is process-global and idempotent by
    name. *)

type kind =
  | Baseline     (** The baseline protocol itself (BGP today). *)
  | Critical_fix (** Extends the baseline's path selection (Section 2.2). *)
  | Custom       (** Runs in parallel with the baseline (Section 2.3). *)
  | Replacement  (** Replaces the baseline within islands (Section 2.4). *)

type t

val register : ?kind:kind -> string -> t
(** [register name] returns the ID registered for [name], creating it if
    needed.  Re-registration with a different [kind] raises
    [Invalid_argument] — the governing body does not re-classify
    protocols. *)

val find : string -> t option
val name : t -> string
val kind : t -> kind
val to_int : t -> int
val of_int : int -> t option
(** Look an ID up by its registry number. *)

val compare : t -> t -> int
(** By {e name}, not registry number: decoding can lazily register
    never-seen protocol names from any simulation domain, so id
    allocation order depends on domain scheduling and must never be
    observable.  {!equal} and {!hash} agree with this order. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
val all : unit -> t list
(** Every protocol registered so far, in name order. *)

(** {1 Well-known protocols}

    The protocols analyzed in Table 1 of the paper, pre-registered. *)

val bgp : t
val bgpsec : t
val eq_bgp : t
val lisp : t
val r_bgp : t
val wiser : t
val miro : t
val arrow : t
val ron : t
val nira : t
val scion : t
val pathlet : t
val yamr : t
val hlp : t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
