exception Error of string

type t = { src : string; mutable pos : int }

let of_string s = { src = s; pos = 0 }
let pos t = t.pos
let remaining t = String.length t.src - t.pos
let at_end t = remaining t = 0
let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let u8 t =
  if remaining t < 1 then fail "u8: truncated at %d" t.pos
  else begin
    let c = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    c
  end

let u16 t =
  let hi = u8 t in
  let lo = u8 t in
  (hi lsl 8) lor lo

let u32 t =
  let hi = u16 t in
  let lo = u16 t in
  (hi lsl 16) lor lo

(* Canonical LEB128, bounded to OCaml's positive int range.  Two classes
   of hostile input are rejected rather than silently mangled:

   - overflow: at shift 56 only 6 payload bits remain below the sign bit
     (a 63-bit int holds 62 value bits), so the 9th byte must be a final
     byte with payload <= 0x3F — otherwise [(b land 0x7F) lsl 56] would
     wrap into the sign bit and a "length" would decode negative;
   - non-canonical zero continuations ([... 0x80 0x00]): a final byte of
     0 after at least one continuation byte encodes the same value as the
     shorter form, breaking decode/encode byte-level idempotence. *)
let varint t =
  let rec go shift acc =
    let b = u8 t in
    if b = 0 && shift > 0 then
      fail "varint: non-canonical trailing zero at %d" (t.pos - 1)
    else if shift = 56 then
      if b land 0x80 <> 0 then fail "varint: too long at %d" (t.pos - 1)
      else if b > 0x3F then fail "varint: overflow at %d" (t.pos - 1)
      else acc lor (b lsl 56)
    else
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let bytes t n =
  if n < 0 || remaining t < n then fail "bytes: need %d, have %d" n (remaining t)
  else begin
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s
  end

let delimited t =
  let n = varint t in
  bytes t n

let ipv4 t = Dbgp_types.Ipv4.of_int (u32 t)

let prefix t =
  let len = u8 t in
  if len > 32 then fail "prefix: bad length %d" len
  else begin
    let octets = (len + 7) / 8 in
    let net = ref 0 in
    for i = 0 to octets - 1 do
      net := !net lor (u8 t lsl (24 - (8 * i)))
    done;
    (* [Prefix.make] masks stray host bits away, which would let two
       distinct byte strings decode to the same prefix; canonical-form
       decoding must reject them instead. *)
    let mask = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF in
    if !net land lnot mask land 0xFFFF_FFFF <> 0 then
      fail "prefix: stray host bits in /%d encoding" len
    else Dbgp_types.Prefix.make (Dbgp_types.Ipv4.of_int !net) len
  end

let asn t = Dbgp_types.Asn.of_int (u32 t)

(* [min_width] is the caller's lower bound on one element's encoding (in
   bytes); the count is checked against [remaining / min_width] before any
   allocation, so a hostile count cannot drive a large [List.init] only to
   fail on the first element. *)
let list ?(min_width = 1) t f =
  if min_width < 1 then invalid_arg "Reader.list: min_width must be positive";
  let n = varint t in
  if n > remaining t / min_width then
    fail "list: count %d exceeds buffer (%d bytes, >=%d each)" n (remaining t)
      min_width
  else List.init n (fun _ -> f t)
