(** Binary decoder matching {!Writer}.

    Decoding a malformed buffer raises {!Error} with a human-readable
    reason; D-BGP speakers translate this into dropping the advertisement
    (as BGP treats an unparseable UPDATE). *)

exception Error of string

type t

val of_string : string -> t
val pos : t -> int
val remaining : t -> int
val at_end : t -> bool

val u8 : t -> int
val u16 : t -> int
val u32 : t -> int
val varint : t -> int
(** Canonical LEB128.  Rejects encodings longer than 9 bytes, 9-byte
    encodings whose payload exceeds [max_int] (they would wrap into the
    sign bit), and non-canonical trailing-zero continuations such as
    [0x80 0x00]. *)

val bytes : t -> int -> string
val delimited : t -> string
val ipv4 : t -> Dbgp_types.Ipv4.t
val prefix : t -> Dbgp_types.Prefix.t
(** Rejects non-canonical encodings with stray host bits inside the last
    octet, keeping decode∘encode byte-level idempotent. *)

val asn : t -> Dbgp_types.Asn.t

val list : ?min_width:int -> t -> (t -> 'a) -> 'a list
(** [min_width] (default 1, must be positive) is a lower bound on one
    element's encoded size; the element count is validated against
    [remaining / min_width] before any allocation happens. *)
