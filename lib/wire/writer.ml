type t = Buffer.t

let create ?(capacity = 256) () = Buffer.create capacity
let length = Buffer.length
let contents = Buffer.contents
let reset = Buffer.clear

let u8 b n =
  if n < 0 || n > 0xFF then invalid_arg "Writer.u8: out of range"
  else Buffer.add_char b (Char.chr n)

let u16 b n =
  if n < 0 || n > 0xFFFF then invalid_arg "Writer.u16: out of range"
  else begin
    Buffer.add_char b (Char.chr (n lsr 8));
    Buffer.add_char b (Char.chr (n land 0xFF))
  end

let u32 b n =
  if n < 0 || n > 0xFFFF_FFFF then invalid_arg "Writer.u32: out of range"
  else begin
    Buffer.add_char b (Char.chr ((n lsr 24) land 0xFF));
    Buffer.add_char b (Char.chr ((n lsr 16) land 0xFF));
    Buffer.add_char b (Char.chr ((n lsr 8) land 0xFF));
    Buffer.add_char b (Char.chr (n land 0xFF))
  end

let rec varint b n =
  if n < 0 then invalid_arg "Writer.varint: negative"
  else if n < 0x80 then Buffer.add_char b (Char.chr n)
  else begin
    Buffer.add_char b (Char.chr (0x80 lor (n land 0x7F)));
    varint b (n lsr 7)
  end

let bytes b s = Buffer.add_string b s

let delimited b s =
  varint b (String.length s);
  bytes b s

let ipv4 b a = u32 b (Dbgp_types.Ipv4.to_int a)

let prefix b p =
  let len = Dbgp_types.Prefix.length p in
  u8 b len;
  let octets = (len + 7) / 8 in
  let net = Dbgp_types.Ipv4.to_int (Dbgp_types.Prefix.network p) in
  for i = 0 to octets - 1 do
    (* Shifted-and-masked octets are always in range; skip u8's check. *)
    Buffer.add_char b (Char.unsafe_chr ((net lsr (24 - (8 * i))) land 0xFF))
  done

let asn b a = u32 b (Dbgp_types.Asn.to_int a)

(* Scratch buffers for single-pass [list]: elements are encoded while
   being counted, then blitted after the varint count.  A pool (stack)
   rather than one global buffer because element encoders recurse into
   [list] (nested Value lists).  The pool is domain-local: encoders run
   concurrently on simulation domains, and a shared stack would let two
   domains pop the same buffer and interleave their bytes. *)
let scratch_pool : Buffer.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_scratch f =
  let pool = Domain.DLS.get scratch_pool in
  let b =
    match !pool with
    | [] -> Buffer.create 128
    | b :: tl ->
      pool := tl;
      b
  in
  Fun.protect
    ~finally:(fun () ->
      Buffer.clear b;
      pool := b :: !pool)
    (fun () -> f b)

let list b f = function
  | [] -> varint b 0
  | [ x ] ->
    varint b 1;
    f b x
  | xs ->
    with_scratch (fun scratch ->
        let n = List.fold_left (fun n x -> f scratch x; n + 1) 0 xs in
        varint b n;
        Buffer.add_buffer b scratch)
