(* Regenerate the differential golden transcripts.

   Usage:
     dune exec test/gen_golden.exe > test/golden_differential.txt
     dune exec test/gen_golden.exe sharded > test/golden_sharded.txt

   The sharded variant records the 1-domain digests of the sharded
   differential scenarios; the parallel suite reproduces them at 2 and
   4 domains (the determinism oracle).  The committed files were
   produced by the current speaker; regenerating only makes sense when
   an *intentional* behaviour change has been reviewed and the new
   fingerprints accepted. *)

let () =
  let digests =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "sharded" then
      Dbgp_eval.Shard_differential.run_all ~domains:1 ()
    else Dbgp_eval.Differential.run_all ()
  in
  List.iter (fun d -> print_endline (Dbgp_eval.Differential.to_line d)) digests
