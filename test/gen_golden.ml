(* Regenerate the differential golden transcripts.

   Usage: dune exec test/gen_golden.exe > test/golden_differential.txt

   The committed golden file was produced by the pre-pipeline speaker;
   regenerating it only makes sense when an *intentional* behaviour
   change has been reviewed and the new fingerprints accepted. *)

let () =
  List.iter
    (fun d -> print_endline (Dbgp_eval.Differential.to_line d))
    (Dbgp_eval.Differential.run_all ())
