(* Adversary suite: attack mechanics, detection predicates, hijack
   containment under the BGPSec-like critical fix, and byte-level
   determinism of the blast-radius report. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module
module Network = Dbgp_netsim.Network
module P = Dbgp_bgp.Policy
module Bgpsec = Dbgp_protocols.Bgpsec_like
module Attack = Dbgp_adversary.Attack
module E = Dbgp_eval
module Invariants = Dbgp_eval.Invariants
module Snapshot = Dbgp_obs.Snapshot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let pfx = Prefix.of_string
let prefix = pfx "99.0.0.0/24"
let dest = Ipv4.of_string "99.0.0.1"

let add net ?island ?passthrough n =
  let a = asn n in
  let s =
    Speaker.create
      (Speaker.config ?island ?passthrough ~asn:a
         ~addr:(Network.speaker_addr a) ())
  in
  Network.add_speaker net s;
  s

let cust net a b = Network.link net ~a:(asn a) ~b:(asn b) ~b_is:P.To_provider ()

let origin_ia n =
  Ia.originate ~prefix ~origin_asn:(asn n)
    ~next_hop:(Network.speaker_addr (asn n)) ()

(* The Gao-Rexford export rule itself: customer-learned and local routes
   go everywhere, peer/provider-learned routes go only to customers. *)
let test_valley_free_rule () =
  let open P in
  List.iter
    (fun to_ -> check "local exports everywhere" true (valley_free ~learned:None ~to_))
    [ To_customer; To_peer; To_provider ];
  List.iter
    (fun to_ ->
      check "customer routes export everywhere" true
        (valley_free ~learned:(Some To_customer) ~to_))
    [ To_customer; To_peer; To_provider ];
  List.iter
    (fun learned ->
      check "peer/provider routes reach customers" true
        (valley_free ~learned:(Some learned) ~to_:To_customer);
      check "peer/provider routes never climb" false
        (valley_free ~learned:(Some learned) ~to_:To_peer);
      check "peer/provider routes never climb (2)" false
        (valley_free ~learned:(Some learned) ~to_:To_provider))
    [ To_peer; To_provider ];
  check "export_all lets a leak through" true
    (export_all ~learned:(Some To_provider) ~to_:To_provider)

(* A linear customer chain 1 <- 2 <- 3 <- 4: a forged-origin announce by
   stub AS 4 in a fully validating deployment is rejected at AS 3 — the
   first validating speaker — and never reaches anyone else.  With an
   empty customer cone the blast radius is exactly zero. *)
let test_hijack_rejected_at_first_validator () =
  let keys i = "s" ^ string_of_int i in
  let pki a = Some (keys (Asn.to_int a)) in
  let authorized p o = (not (Prefix.subsumes prefix p)) || Asn.equal o (asn 1) in
  let net = Network.create () in
  let speakers =
    List.map
      (fun n ->
        let s = add net n in
        Speaker.add_module s
          (Bgpsec.decision_module
             { Bgpsec.me = asn n; secret = keys n; pki; require_full = true;
               authorized = Some authorized });
        Speaker.set_active s prefix Bgpsec.protocol;
        s)
      [ 1; 2; 3; 4 ]
  in
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  Network.originate net (asn 1)
    (Bgpsec.sign_origin ~secret:(keys 1) ~me:(asn 1) (origin_ia 1));
  ignore (Network.run net);
  let attack =
    { Attack.kind = Attack.Origin_hijack; attacker = asn 4; victim = asn 1;
      prefix }
  in
  Attack.launch net attack;
  ignore (Network.run net);
  let s3 = List.nth speakers 2 and s2 = List.nth speakers 1 in
  (* The first validating speaker holds the forged candidate but refused
     to select it... *)
  check "AS 3 received the forgery" true
    (List.exists
       (fun (p, _) -> Asn.equal p.Dbgp_core.Peer.asn (asn 4))
       (Speaker.candidates_for s3 prefix));
  ( match Speaker.best s3 prefix with
    | None -> Alcotest.fail "AS 3 must keep its honest route"
    | Some c ->
      check "AS 3 still routes on the victim's origination" true
        (match List.rev (Ia.asns_on_path c.Speaker.candidate.Dm.ia) with
        | o :: _ -> Asn.equal o (asn 1)
        | [] -> false) );
  (* ...and nothing leaked past it: AS 2 never even saw a candidate from
     beyond its own customer edge carrying a wrong origin. *)
  check "no forged candidate beyond the first validator" true
    (List.for_all
       (fun (_, ia) ->
         match List.rev (Ia.asns_on_path ia) with
         | o :: _ -> Asn.equal o (asn 1)
         | [] -> false)
       (Speaker.candidates_for s2 prefix));
  (* The candidate-level detection predicate pinpoints exactly the first
     validator; the selected-state predicate stays silent. *)
  check "forged candidate detected at AS 3" true
    (List.exists
       (function Invariants.Origin_mismatch (3, 4) -> true | _ -> false)
       (Invariants.forged_candidates net ~prefix ~owner:(asn 1)));
  check_int "no selected route is hijacked" 0
    (List.length (Invariants.origin_mismatches net ~prefix ~owner:(asn 1)))

(* The harness-level containment claim on a real topology: every hijack
   variant in the BGPSec-like arm converges with zero blast radius,
   clean control and recovery phases, and detection still firing (the
   forged candidates are visible at the validators that rejected
   them). *)
let test_containment_blast_radius_zero () =
  List.iter
    (fun kind ->
      let o =
        E.Adversary.run_scenario E.Adversary.default E.Adversary.Brite
          E.Adversary.Dbgp_bgpsec kind
      in
      let name = Attack.name kind in
      check (name ^ ": control clean") true o.E.Adversary.control_clean;
      check (name ^ ": contained") true o.E.Adversary.contained;
      check (name ^ ": zero blast radius") true
        (o.E.Adversary.blast_radius = 0.);
      check (name ^ ": detection fired") true (o.E.Adversary.detections > 0);
      check (name ^ ": recovered") true o.E.Adversary.recovered_clean)
    (List.filter Attack.is_hijack Attack.all)

(* The same hijacks on the legacy arm must escape: that gap is the
   containment the critical fix buys. *)
let test_legacy_hijacks_escape () =
  let blast kind =
    (E.Adversary.run_scenario E.Adversary.default E.Adversary.Brite
       E.Adversary.Legacy kind)
      .E.Adversary.blast_radius
  in
  check "origin hijack poisons someone on legacy" true
    (blast Attack.Origin_hijack > 0.);
  check "sub-prefix hijack poisons everyone on legacy" true
    (blast Attack.Subprefix_hijack = 1.)

(* Route leak mechanics: flipping the attacker's export rule produces
   Valley_export violations at the leaking AS, and restoring the rule
   heals them. *)
let test_route_leak_detected_and_healed () =
  let o =
    E.Adversary.run_scenario E.Adversary.default E.Adversary.Caida
      E.Adversary.Dbgp Attack.Route_leak
  in
  check "control clean" true o.E.Adversary.control_clean;
  check "leak detected" true (o.E.Adversary.detections > 0);
  check "leak healed" true o.E.Adversary.recovered_clean

(* D-BGP-specific attacks: the tampering transit AS is visible to the
   D-BGP arms (forged island descriptor / missing pass-through data on
   selected routes) and invisible to legacy, which strips the
   descriptors anyway. *)
let test_island_attacks_detection () =
  List.iter
    (fun kind ->
      let run arm =
        E.Adversary.run_scenario E.Adversary.default E.Adversary.Caida arm kind
      in
      let legacy = run E.Adversary.Legacy in
      check "legacy cannot see the attack" false
        legacy.E.Adversary.detection_applicable;
      List.iter
        (fun arm ->
          let o = run arm in
          check "dbgp arm sees the attack" true
            o.E.Adversary.detection_applicable;
          check "dbgp arm detects the attack" true
            (o.E.Adversary.detections > 0);
          check "tampering heals on stand-down" true
            o.E.Adversary.recovered_clean)
        [ E.Adversary.Dbgp; E.Adversary.Dbgp_bgpsec ])
    [ Attack.Island_forgery; Attack.Passthrough_tamper ]

(* Same seed, same config: the full report must serialize to the exact
   same bytes — the reproducibility contract behind BENCH_adversary.json. *)
let test_report_determinism () =
  let json () =
    Snapshot.to_json_pretty
      (E.Adversary.to_snapshot (E.Adversary.run E.Adversary.default))
  in
  let a = json () and b = json () in
  Alcotest.(check string) "byte-identical reports" a b;
  check "default run is healthy" true
    (E.Adversary.run E.Adversary.default).E.Adversary.healthy

(* Detection predicates stay silent on an honest converged network even
   with the adversary-grade scans enabled. *)
let test_predicates_silent_on_honest_state () =
  let net = Network.create () in
  List.iter (fun n -> ignore (add net n)) [ 1; 2; 3; 4 ];
  cust net 1 2;
  cust net 2 3;
  cust net 2 4;
  Network.originate net (asn 1) (origin_ia 1);
  ignore (Network.run net);
  check_int "no origin mismatch" 0
    (List.length (Invariants.origin_mismatches net ~prefix ~owner:(asn 1)));
  check_int "no valley export" 0
    (List.length (Invariants.valley_violations net));
  check_int "no forged adjacency" 0
    (List.length (Invariants.forged_adjacencies net ~prefix));
  check_int "no forged candidate" 0
    (List.length (Invariants.forged_candidates net ~prefix ~owner:(asn 1)));
  check_int "no forged island descriptor" 0
    (List.length
       (Invariants.forged_island_descriptors net ~prefix
          ~island:Attack.forged_island ~proto:Attack.forged_proto
          ~field:Attack.forged_field ~expected:None));
  ignore dest

let () =
  Alcotest.run "adversary"
    [ ( "adversary",
        [ Alcotest.test_case "valley-free export rule" `Quick
            test_valley_free_rule;
          Alcotest.test_case "hijack rejected at first validator" `Quick
            test_hijack_rejected_at_first_validator;
          Alcotest.test_case "containment: zero blast radius" `Quick
            test_containment_blast_radius_zero;
          Alcotest.test_case "legacy hijacks escape" `Quick
            test_legacy_hijacks_escape;
          Alcotest.test_case "route leak detected and healed" `Quick
            test_route_leak_detected_and_healed;
          Alcotest.test_case "island attacks: detection by arm" `Quick
            test_island_attacks_detection;
          Alcotest.test_case "report determinism" `Quick
            test_report_determinism;
          Alcotest.test_case "predicates silent on honest state" `Quick
            test_predicates_silent_on_honest_state ] ) ]
