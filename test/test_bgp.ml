open Dbgp_types
module Attr = Dbgp_bgp.Attr
module Message = Dbgp_bgp.Message
module Decision = Dbgp_bgp.Decision
module Policy = Dbgp_bgp.Policy
module Fsm = Dbgp_bgp.Fsm
module W = Dbgp_wire.Writer
module R = Dbgp_wire.Reader

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string

let attrs ?med ?local_pref ?(origin = Attr.Igp) ?(communities = [])
    ?(unknowns = []) path =
  Attr.make ~origin ?med ?local_pref ~communities ~unknowns
    ~as_path:[ Attr.Seq (List.map asn path) ]
    ~next_hop:(ip "10.0.0.1") ()

(* ------------------------- Attr ------------------------- *)

let test_attr_roundtrip () =
  let a =
    Attr.make ~origin:Attr.Egp ~med:30 ~local_pref:150 ~atomic_aggregate:true
      ~aggregator:(asn 100, ip "1.1.1.1")
      ~communities:[ Attr.community ~asn:65000 ~value:42 ]
      ~unknowns:[ { Attr.type_code = 99; transitive = true; body = "blob" } ]
      ~as_path:[ Attr.Seq [ asn 1; asn 2 ]; Attr.Set [ asn 3; asn 4 ] ]
      ~next_hop:(ip "9.9.9.9") ()
  in
  let w = W.create () in
  Attr.encode w a;
  let b = Attr.decode (R.of_string (W.contents w)) in
  check "roundtrip equal" true (Attr.equal a b)

let test_attr_path_length () =
  let a = attrs [ 1; 2; 3 ] in
  check_int "seq" 3 (Attr.as_path_length a.Attr.as_path);
  let withset = [ Attr.Seq [ asn 1 ]; Attr.Set [ asn 2; asn 3; asn 4 ] ] in
  check_int "set counts one" 2 (Attr.as_path_length withset)

let test_attr_prepend () =
  let a = attrs [ 2; 3 ] in
  let p = Attr.prepend (asn 1) a.Attr.as_path in
  check "prepended" true (Attr.as_path_asns p = [ asn 1; asn 2; asn 3 ]);
  let onto_set = Attr.prepend (asn 1) [ Attr.Set [ asn 2 ] ] in
  check "new seq before set" true
    (match onto_set with Attr.Seq [ x ] :: Attr.Set _ :: [] -> Asn.equal x (asn 1) | _ -> false)

let test_attr_contains () =
  let a = attrs [ 10; 20 ] in
  check "contains" true (Attr.as_path_contains (asn 20) a.Attr.as_path);
  check "not contains" false (Attr.as_path_contains (asn 30) a.Attr.as_path)

let test_attr_strip () =
  let a =
    attrs ~local_pref:200
      ~unknowns:
        [ { Attr.type_code = 1; transitive = true; body = "keep" };
          { Attr.type_code = 2; transitive = false; body = "drop" } ]
      [ 1 ]
  in
  let s = Attr.strip_non_transitive a in
  check "local pref dropped" true (s.Attr.local_pref = None);
  check_int "one unknown kept" 1 (List.length s.Attr.unknowns);
  check "transitive kept" true
    (List.for_all (fun u -> u.Attr.transitive) s.Attr.unknowns)

let test_community_encoding () =
  let c = Attr.community ~asn:65000 ~value:10 in
  check_int "packed" ((65000 lsl 16) lor 10) c;
  Alcotest.check_raises "range" (Invalid_argument "Attr.community: halves must fit 16 bits")
    (fun () -> ignore (Attr.community ~asn:70000 ~value:0))

(* ------------------------- Message ------------------------- *)

let roundtrip m = Message.decode (Message.encode m)

let test_msg_open () =
  let o =
    Message.Open
      { Message.version = 4; my_asn = asn 65001; hold_time = 90;
        bgp_id = ip "10.0.0.1"; capabilities = [ Message.capability_dbgp ] }
  in
  check "open roundtrip" true (roundtrip o = o)

let test_msg_update () =
  let u =
    Message.Update
      { Message.withdrawn = [ pfx "10.1.0.0/16" ];
        attrs = Some (attrs [ 1; 2 ]);
        nlri = [ pfx "10.2.0.0/16"; pfx "10.3.0.0/24" ] }
  in
  check "update roundtrip" true (roundtrip u = u);
  let w_only =
    Message.Update { Message.withdrawn = [ pfx "1.0.0.0/8" ]; attrs = None; nlri = [] }
  in
  check "withdraw-only roundtrip" true (roundtrip w_only = w_only)

let test_msg_keepalive_notification () =
  check "keepalive" true (roundtrip Message.Keepalive = Message.Keepalive);
  let n = Message.Notification { Message.error_code = 6; error_subcode = 2; data = "bye" } in
  check "notification" true (roundtrip n = n)

let test_msg_malformed () =
  let fails s = try ignore (Message.decode s) ; false with R.Error _ -> true in
  check "bad marker" true (fails (String.make 19 '\x00'));
  check "truncated" true (fails "\xff\xff");
  let good = Message.encode Message.Keepalive in
  let tampered = String.sub good 0 (String.length good - 1) ^ "\x07" in
  check "bad type" true (fails (String.sub tampered 0 18 ^ "\x09"))

let test_msg_length_field () =
  let m = Message.encode Message.Keepalive in
  check_int "keepalive is 19 bytes" 19 (String.length m);
  let fails s = try ignore (Message.decode s) ; false with R.Error _ -> true in
  check "length mismatch" true (fails (m ^ "extra"))

(* ------------------------- Decision ------------------------- *)

let cand ?(peer = "10.0.0.9") ?(from = 200) ?(ebgp = true) a =
  { Decision.attrs = a; from_peer = ip peer; from_asn = asn from; ebgp }

let test_decision_local_pref () =
  let hi = cand (attrs ~local_pref:200 [ 1; 2; 3; 4 ]) in
  let lo = cand (attrs ~local_pref:100 [ 1 ]) in
  check "local pref dominates length" true (Decision.compare hi lo > 0)

let test_decision_path_length () =
  let short = cand (attrs [ 1; 2 ]) in
  let long = cand (attrs [ 1; 2; 3 ]) in
  check "shorter wins" true (Decision.compare short long > 0)

let test_decision_origin () =
  let igp = cand (attrs ~origin:Attr.Igp [ 1; 2 ]) in
  let egp = cand (attrs ~origin:Attr.Egp [ 1; 2 ]) in
  let inc = cand (attrs ~origin:Attr.Incomplete [ 1; 2 ]) in
  check "igp > egp" true (Decision.compare igp egp > 0);
  check "egp > incomplete" true (Decision.compare egp inc > 0)

let test_decision_med () =
  let a = cand ~from:100 (attrs ~med:10 [ 1; 2 ]) in
  let b = cand ~from:100 ~peer:"10.0.0.8" (attrs ~med:20 [ 1; 2 ]) in
  check "lower med same neighbor" true (Decision.compare a b > 0);
  let c = cand ~from:101 ~peer:"10.0.0.8" (attrs ~med:20 [ 1; 2 ]) in
  (* different neighbor AS: MED skipped, falls to ebgp tie then peer id *)
  check "med not compared across ASes" true (Decision.compare a c < 0)

let test_decision_ebgp_peer () =
  let e = cand ~ebgp:true (attrs [ 1; 2 ]) in
  let i = cand ~ebgp:false ~peer:"10.0.0.1" (attrs [ 1; 2 ]) in
  check "ebgp over ibgp" true (Decision.compare e i > 0);
  let p1 = cand ~peer:"10.0.0.1" (attrs [ 1; 2 ]) in
  let p2 = cand ~peer:"10.0.0.2" (attrs [ 1; 2 ]) in
  check "lower peer id wins" true (Decision.compare p1 p2 > 0)

let test_decision_best_rank () =
  let c1 = cand ~peer:"10.0.0.3" (attrs [ 1; 2; 3 ]) in
  let c2 = cand ~peer:"10.0.0.2" (attrs [ 1; 2 ]) in
  let c3 = cand ~peer:"10.0.0.1" (attrs ~local_pref:300 [ 1; 2; 3; 4; 5 ]) in
  check "best is highest lp" true (Decision.best [ c1; c2; c3 ] = Some c3);
  check "empty none" true (Decision.best [] = None);
  let ranked = Decision.rank [ c1; c2; c3 ] in
  check "rank order" true (ranked = [ c3; c2; c1 ])

(* ------------------------- Policy ------------------------- *)

let test_policy_first_match () =
  let pol =
    [ { Policy.cond = Policy.Match_prefix (pfx "10.0.0.0/8"); permit = false; actions = [] };
      { Policy.cond = Policy.Match_any; permit = true; actions = [ Policy.Set_med 5 ] } ]
  in
  check "denied" true (Policy.apply pol (pfx "10.1.0.0/16") (attrs [ 1 ]) = None);
  ( match Policy.apply pol (pfx "11.0.0.0/8") (attrs [ 1 ]) with
    | Some a -> check "action applied" true (a.Attr.med = Some 5)
    | None -> Alcotest.fail "should permit" );
  check "implicit deny" true (Policy.apply Policy.deny_all (pfx "1.0.0.0/8") (attrs [ 1 ]) = None)

let test_policy_matchers () =
  let a = attrs ~communities:[ Attr.community ~asn:1 ~value:2 ] [ 7; 8 ] in
  let m c = Policy.apply [ { Policy.cond = c; permit = true; actions = [] } ] (pfx "9.0.0.0/8") a <> None in
  check "asn on path" true (m (Policy.Match_asn_on_path (asn 8)));
  check "asn absent" false (m (Policy.Match_asn_on_path (asn 9)));
  check "community" true (m (Policy.Match_community (Attr.community ~asn:1 ~value:2)));
  check "not" true (m (Policy.Match_not (Policy.Match_asn_on_path (asn 9))));
  check "all" true
    (m (Policy.Match_all [ Policy.Match_any; Policy.Match_asn_on_path (asn 7) ]))

let test_policy_actions () =
  let a = attrs [ 5 ] in
  let run acts =
    match
      Policy.apply [ { Policy.cond = Policy.Match_any; permit = true; actions = acts } ]
        (pfx "9.0.0.0/8") a
    with
    | Some x -> x
    | None -> Alcotest.fail "permit expected"
  in
  check "set lp" true ((run [ Policy.Set_local_pref 300 ]).Attr.local_pref = Some 300);
  check_int "prepend twice" 3
    (Attr.as_path_length (run [ Policy.Prepend (asn 5, 2) ]).Attr.as_path);
  check "strip communities" true
    ((run [ Policy.Add_community 7; Policy.Strip_communities ]).Attr.communities = [])

let test_policy_gao_rexford () =
  let lp rel =
    match Policy.apply (Policy.import_for rel) (pfx "9.0.0.0/8") (attrs [ 1 ]) with
    | Some a -> Option.value a.Attr.local_pref ~default:0
    | None -> -1
  in
  check "customer > peer > provider" true
    (lp Policy.To_customer > lp Policy.To_peer && lp Policy.To_peer > lp Policy.To_provider);
  check "customer routes exported everywhere" true
    (Policy.export_for Policy.To_peer ~learned_local_pref:(Some 200));
  check "peer routes not to peers" false
    (Policy.export_for Policy.To_peer ~learned_local_pref:(Some 100));
  check "peer routes to customers" true
    (Policy.export_for Policy.To_customer ~learned_local_pref:(Some 100));
  check "local routes everywhere" true
    (Policy.export_for Policy.To_provider ~learned_local_pref:None)

(* ------------------------- FSM ------------------------- *)

let cfg =
  { Fsm.my_asn = asn 65001; my_id = ip "10.0.0.1"; hold_time = 90;
    capabilities = [ Message.capability_dbgp ] }

let peer_open : Message.open_msg =
  { Message.version = 4; my_asn = asn 65002; hold_time = 30;
    bgp_id = ip "10.0.0.2"; capabilities = [] }

let drive t evs = List.fold_left (fun (t, _) ev -> Fsm.handle t ev) (t, []) evs

let test_fsm_happy_path () =
  let t = Fsm.create cfg in
  check "starts idle" true (Fsm.state t = Fsm.Idle);
  let t, acts = Fsm.handle t Fsm.Manual_start in
  check "connecting" true (Fsm.state t = Fsm.Connect);
  check "wants tcp" true (List.mem Fsm.Connect_tcp acts);
  let t, acts = Fsm.handle t Fsm.Tcp_established in
  check "open sent" true (Fsm.state t = Fsm.Open_sent);
  check "sent open" true
    (List.exists (function Fsm.Send (Message.Open _) -> true | _ -> false) acts);
  let t, acts = Fsm.handle t (Fsm.Recv (Message.Open peer_open)) in
  check "open confirm" true (Fsm.state t = Fsm.Open_confirm);
  check "sent keepalive" true (List.mem (Fsm.Send Message.Keepalive) acts);
  let t, acts = Fsm.handle t (Fsm.Recv Message.Keepalive) in
  check "established" true (Fsm.state t = Fsm.Established);
  check "session up" true
    (List.exists (function Fsm.Session_up _ -> true | _ -> false) acts);
  check "negotiated min hold" true (Fsm.negotiated_hold_time t = Some 30)

let established () =
  fst
    (drive (Fsm.create cfg)
       [ Fsm.Manual_start; Fsm.Tcp_established;
         Fsm.Recv (Message.Open peer_open); Fsm.Recv Message.Keepalive ])

let test_fsm_update_delivery () =
  let t = established () in
  let u = { Message.withdrawn = []; attrs = Some (attrs [ 1 ]); nlri = [ pfx "1.0.0.0/8" ] } in
  let t', acts = Fsm.handle t (Fsm.Recv (Message.Update u)) in
  check "still established" true (Fsm.state t' = Fsm.Established);
  check "delivered" true (List.mem (Fsm.Deliver_update u) acts);
  check "hold timer restarted" true
    (List.exists (function Fsm.Start_hold_timer _ -> true | _ -> false) acts)

let test_fsm_hold_expiry () =
  let t = established () in
  let t', acts = Fsm.handle t Fsm.Hold_timer_expired in
  check "reset to idle" true (Fsm.state t' = Fsm.Idle);
  check "session down" true (List.mem Fsm.Session_down acts);
  check "notified" true
    (List.exists (function Fsm.Send (Message.Notification _) -> true | _ -> false) acts)

let test_fsm_bad_version () =
  let t, _ = drive (Fsm.create cfg) [ Fsm.Manual_start; Fsm.Tcp_established ] in
  let t', acts = Fsm.handle t (Fsm.Recv (Message.Open { peer_open with Message.version = 3 })) in
  check "rejected to idle" true (Fsm.state t' = Fsm.Idle);
  check "open error" true
    (List.exists
       (function Fsm.Send (Message.Notification n) -> n.Message.error_code = 2 | _ -> false)
       acts)

let test_fsm_stop () =
  let t = established () in
  let t', acts = Fsm.handle t Fsm.Manual_stop in
  check "idle" true (Fsm.state t' = Fsm.Idle);
  check "cease sent" true
    (List.exists
       (function Fsm.Send (Message.Notification n) -> n.Message.error_code = 6 | _ -> false)
       acts)

let test_fsm_keepalive_cycle () =
  let t = established () in
  let _, acts = Fsm.handle t Fsm.Keepalive_timer_expired in
  check "keepalive sent and rearmed" true
    (List.mem (Fsm.Send Message.Keepalive) acts
    && List.exists (function Fsm.Start_keepalive_timer _ -> true | _ -> false) acts)

let test_fsm_unexpected_open_in_established () =
  let t = established () in
  let t', _ = Fsm.handle t (Fsm.Recv (Message.Open peer_open)) in
  check "fsm error resets" true (Fsm.state t' = Fsm.Idle)

let test_fsm_zero_hold_time () =
  (* hold time 0 disables keepalive/hold machinery entirely *)
  let z = { cfg with Fsm.hold_time = 0 } in
  let t, _ =
    drive (Fsm.create z)
      [ Fsm.Manual_start; Fsm.Tcp_established;
        Fsm.Recv (Message.Open { peer_open with Message.hold_time = 0 }) ]
  in
  let t, acts = Fsm.handle t (Fsm.Recv Message.Keepalive) in
  check "established" true (Fsm.state t = Fsm.Established);
  check "no timers armed" false
    (List.exists
       (function Fsm.Start_hold_timer _ | Fsm.Start_keepalive_timer _ -> true | _ -> false)
       acts);
  check "negotiated zero" true (Fsm.negotiated_hold_time t = Some 0)

(* ------------------------- connect-retry backoff ------------------------- *)

let no_jitter =
  { Fsm.base = 1.0; multiplier = 2.0; max_delay = 8.0; max_retries = 10;
    jitter = 0.; seed = 1 }

(* Fail [n] connection attempts in a row and collect the armed delays. *)
let backoff_delays t n =
  let rec go t acc k =
    if k = 0 then (t, acc)
    else
      let t, _ = Fsm.handle t Fsm.Connect_retry_expired in
      let t, acts = Fsm.handle t Fsm.Tcp_failed in
      let ds =
        List.filter_map
          (function Fsm.Start_connect_retry_timer d -> Some d | _ -> None)
          acts
      in
      (* No timer armed means the FSM gave up: the runtime would never
         deliver another Connect_retry_expired, so stop driving. *)
      if ds = [] then (t, acc) else go t (acc @ ds) (k - 1)
  in
  let t, acts = Fsm.handle t Fsm.Manual_start in
  assert (List.mem Fsm.Connect_tcp acts);
  let t, acts = Fsm.handle t Fsm.Tcp_failed in
  let first =
    List.filter_map
      (function Fsm.Start_connect_retry_timer d -> Some d | _ -> None)
      acts
  in
  go t first (n - 1)

let test_fsm_backoff_schedule () =
  (* Without jitter the schedule is exactly base * multiplier^n, capped. *)
  let _, ds = backoff_delays (Fsm.create ~retry:no_jitter cfg) 6 in
  Alcotest.(check (list (float 1e-9)))
    "exponential, capped at max_delay" [ 1.; 2.; 4.; 8.; 8.; 8. ] ds

let test_fsm_backoff_deterministic () =
  let jittered = { no_jitter with Fsm.jitter = 0.25; seed = 7 } in
  let _, d1 = backoff_delays (Fsm.create ~retry:jittered cfg) 5 in
  let _, d2 = backoff_delays (Fsm.create ~retry:jittered cfg) 5 in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" d1 d2;
  List.iteri
    (fun i d ->
      let base = Float.min 8.0 (2.0 ** float_of_int i) in
      check "jitter within [d, 1.25d]" true (d >= base && d <= 1.25 *. base))
    d1

let test_fsm_backoff_max_retries () =
  let capped = { no_jitter with Fsm.max_retries = 3 } in
  let t, ds = backoff_delays (Fsm.create ~retry:capped cfg) 5 in
  check_int "gives up after the cap" 3 (List.length ds);
  check "parked in idle" true (Fsm.state t = Fsm.Idle);
  check_int "attempt counter reset on giving up" 0 (Fsm.attempts t)

let test_fsm_backoff_resets_on_established () =
  let t = Fsm.create ~retry:no_jitter cfg in
  let t, _ = drive t [ Fsm.Manual_start; Fsm.Tcp_failed ] in
  check_int "one attempt recorded" 1 (Fsm.attempts t);
  let t, _ =
    drive t
      [ Fsm.Connect_retry_expired; Fsm.Tcp_established;
        Fsm.Recv (Message.Open peer_open); Fsm.Recv Message.Keepalive ]
  in
  check "re-established via retry" true (Fsm.state t = Fsm.Established);
  check_int "attempts cleared" 0 (Fsm.attempts t);
  (* The next failure starts the schedule from the base delay again. *)
  let _, acts = Fsm.handle t Fsm.Tcp_failed in
  check "restarts from base delay" true
    (List.mem (Fsm.Start_connect_retry_timer 1.0) acts)

let test_fsm_manual_stop_cancels_retry () =
  let t = Fsm.create ~retry:no_jitter cfg in
  let t, _ = drive t [ Fsm.Manual_start; Fsm.Tcp_failed ] in
  let t, acts = Fsm.handle t Fsm.Manual_stop in
  check "stop action emitted" true (List.mem Fsm.Stop_connect_retry_timer acts);
  check_int "attempts cleared" 0 (Fsm.attempts t);
  (* A stale expiry after the stop is ignored once re-established. *)
  let t, _ = Fsm.handle t Fsm.Tcp_established in
  check "passive open still works" true (Fsm.state t = Fsm.Open_sent)

(* Hold-timer expiry must tear down (or no-op) in every non-Idle state;
   before the fault work only Established was exercised. *)
let test_fsm_hold_expiry_all_states () =
  let connect, _ = drive (Fsm.create cfg) [ Fsm.Manual_start ] in
  let t', acts = Fsm.handle connect Fsm.Hold_timer_expired in
  check "connect: spurious expiry ignored" true
    (Fsm.state t' = Fsm.Connect && acts = []);
  let open_sent, _ =
    drive (Fsm.create cfg) [ Fsm.Manual_start; Fsm.Tcp_established ]
  in
  let t', acts = Fsm.handle open_sent Fsm.Hold_timer_expired in
  check "open_sent: reset with notification" true
    (Fsm.state t' = Fsm.Idle
    && List.exists
         (function
           | Fsm.Send (Message.Notification n) -> n.Message.error_code = 4
           | _ -> false)
         acts);
  let open_confirm, _ =
    drive (Fsm.create cfg)
      [ Fsm.Manual_start; Fsm.Tcp_established;
        Fsm.Recv (Message.Open peer_open) ]
  in
  let t', acts = Fsm.handle open_confirm Fsm.Hold_timer_expired in
  check "open_confirm: reset with notification" true
    (Fsm.state t' = Fsm.Idle
    && List.exists
         (function
           | Fsm.Send (Message.Notification n) -> n.Message.error_code = 4
           | _ -> false)
         acts);
  let t', acts = Fsm.handle (established ()) Fsm.Hold_timer_expired in
  check "established: session down" true
    (Fsm.state t' = Fsm.Idle && List.mem Fsm.Session_down acts)

(* ------------------------- flap damping ------------------------- *)

module Damping = Dbgp_bgp.Flap_damping

let damp_params =
  { Damping.half_life = 1.;
    suppress_threshold = 1500.;
    reuse_threshold = 500.;
    withdraw_penalty = 1000.;
    attr_change_penalty = 500.;
    max_penalty = 4000. }

let test_damping_validate () =
  check "default valid" true (Damping.validate Damping.default == Damping.default);
  Alcotest.check_raises "reuse above suppress"
    (Invalid_argument
       "Flap_damping: need 0 < reuse_threshold < suppress_threshold")
    (fun () ->
      ignore
        (Damping.validate
           { damp_params with Damping.reuse_threshold = 2000. }))

let test_damping_decay () =
  let st = Damping.create () in
  Damping.penalize damp_params st ~now:0. 1000.;
  Alcotest.(check (float 1e-6)) "initial" 1000.
    (Damping.penalty damp_params st ~now:0.);
  Alcotest.(check (float 1e-6)) "one half-life" 500.
    (Damping.penalty damp_params st ~now:1.);
  Alcotest.(check (float 1e-6)) "two half-lives" 250.
    (Damping.penalty damp_params st ~now:2.)

let test_damping_suppress_reuse_crossing () =
  let st = Damping.create () in
  Damping.penalize damp_params st ~now:0. 1000.;
  check "below threshold" false (Damping.is_suppressed damp_params st ~now:0.);
  Damping.penalize damp_params st ~now:0. 1000.;
  check "crossed into suppression" true
    (Damping.is_suppressed damp_params st ~now:0.);
  let ttr = Damping.time_to_reuse damp_params st ~now:0. in
  Alcotest.(check (float 1e-6)) "reuse time = hl * log2(p/reuse)" 2. ttr;
  check "still suppressed just before reuse" true
    (Damping.is_suppressed damp_params st ~now:(ttr -. 0.01));
  check "released after reuse time" false
    (Damping.is_suppressed damp_params st ~now:(ttr +. 0.01))

let test_damping_penalty_cap () =
  let st = Damping.create () in
  for _ = 1 to 20 do
    Damping.penalize damp_params st ~now:0. 1000.
  done;
  Alcotest.(check (float 1e-6)) "capped at max_penalty" 4000.
    (Damping.penalty damp_params st ~now:0.);
  check_int "every flap counted" 20 (Damping.flaps st)

let test_attr_unknown_flags () =
  let a =
    attrs
      ~unknowns:
        [ { Attr.type_code = 200; transitive = true; body = "t" };
          { Attr.type_code = 201; transitive = false; body = "n" } ]
      [ 1 ]
  in
  let w = W.create () in
  Attr.encode w a;
  let b = Attr.decode (R.of_string (W.contents w)) in
  check "transitivity bits survive the wire" true
    (List.map (fun (u : Attr.unknown) -> (u.Attr.type_code, u.Attr.transitive)) b.Attr.unknowns
    = [ (200, true); (201, false) ])

let qcheck =
  let open QCheck in
  [ Test.make ~name:"attr wire roundtrip" ~count:200
      (triple (list_of_size (Gen.int_range 1 6) (int_bound 100000))
         (option (int_bound 1000)) (option (int_bound 1000)))
      (fun (path, med, lp) ->
        let a =
          Attr.make ?med ?local_pref:lp
            ~as_path:[ Attr.Seq (List.map asn path) ]
            ~next_hop:(ip "1.2.3.4") ()
        in
        let w = W.create () in
        Attr.encode w a;
        Attr.equal a (Attr.decode (R.of_string (W.contents w))));
    Test.make ~name:"decision total order antisymmetric" ~count:200
      (pair (list_of_size (Gen.int_range 1 5) (int_bound 1000))
         (list_of_size (Gen.int_range 1 5) (int_bound 1000)))
      (fun (p1, p2) ->
        let c1 = cand ~peer:"10.0.0.1" (attrs p1) in
        let c2 = cand ~peer:"10.0.0.2" (attrs p2) in
        let ab = Decision.compare c1 c2 and ba = Decision.compare c2 c1 in
        (ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0)) ]

let () =
  Alcotest.run "bgp"
    [ ("attr",
       [ Alcotest.test_case "roundtrip" `Quick test_attr_roundtrip;
         Alcotest.test_case "path length" `Quick test_attr_path_length;
         Alcotest.test_case "prepend" `Quick test_attr_prepend;
         Alcotest.test_case "contains" `Quick test_attr_contains;
         Alcotest.test_case "strip non-transitive" `Quick test_attr_strip;
         Alcotest.test_case "communities" `Quick test_community_encoding ]);
      ("message",
       [ Alcotest.test_case "open" `Quick test_msg_open;
         Alcotest.test_case "update" `Quick test_msg_update;
         Alcotest.test_case "keepalive/notification" `Quick test_msg_keepalive_notification;
         Alcotest.test_case "malformed" `Quick test_msg_malformed;
         Alcotest.test_case "length field" `Quick test_msg_length_field ]);
      ("decision",
       [ Alcotest.test_case "local pref" `Quick test_decision_local_pref;
         Alcotest.test_case "path length" `Quick test_decision_path_length;
         Alcotest.test_case "origin" `Quick test_decision_origin;
         Alcotest.test_case "med" `Quick test_decision_med;
         Alcotest.test_case "ebgp/peer id" `Quick test_decision_ebgp_peer;
         Alcotest.test_case "best/rank" `Quick test_decision_best_rank ]);
      ("policy",
       [ Alcotest.test_case "first match" `Quick test_policy_first_match;
         Alcotest.test_case "matchers" `Quick test_policy_matchers;
         Alcotest.test_case "actions" `Quick test_policy_actions;
         Alcotest.test_case "gao-rexford" `Quick test_policy_gao_rexford ]);
      ("fsm",
       [ Alcotest.test_case "happy path" `Quick test_fsm_happy_path;
         Alcotest.test_case "update delivery" `Quick test_fsm_update_delivery;
         Alcotest.test_case "hold expiry" `Quick test_fsm_hold_expiry;
         Alcotest.test_case "bad version" `Quick test_fsm_bad_version;
         Alcotest.test_case "manual stop" `Quick test_fsm_stop;
         Alcotest.test_case "keepalive cycle" `Quick test_fsm_keepalive_cycle;
         Alcotest.test_case "unexpected open" `Quick test_fsm_unexpected_open_in_established;
         Alcotest.test_case "zero hold time" `Quick test_fsm_zero_hold_time;
         Alcotest.test_case "hold expiry in all states" `Quick
           test_fsm_hold_expiry_all_states ]);
      ("fsm-backoff",
       [ Alcotest.test_case "schedule" `Quick test_fsm_backoff_schedule;
         Alcotest.test_case "deterministic" `Quick test_fsm_backoff_deterministic;
         Alcotest.test_case "max retries" `Quick test_fsm_backoff_max_retries;
         Alcotest.test_case "reset on established" `Quick
           test_fsm_backoff_resets_on_established;
         Alcotest.test_case "manual stop cancels" `Quick
           test_fsm_manual_stop_cancels_retry ]);
      ("flap-damping",
       [ Alcotest.test_case "validate" `Quick test_damping_validate;
         Alcotest.test_case "decay" `Quick test_damping_decay;
         Alcotest.test_case "suppress/reuse crossing" `Quick
           test_damping_suppress_reuse_crossing;
         Alcotest.test_case "penalty cap" `Quick test_damping_penalty_cap ]);
      ("attr-flags", [ Alcotest.test_case "unknown transitivity" `Quick test_attr_unknown_flags ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
