(* Tests for the fault-injection layer: the fault model itself, link
   failure/recovery semantics on the network harness, graceful restart,
   damping in the decision path, and the end-to-end seeded chaos runs. *)

open Dbgp_types
module Network = Dbgp_netsim.Network
module Fault_model = Dbgp_netsim.Fault_model
module Eq = Dbgp_netsim.Event_queue
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Ia = Dbgp_core.Ia
module Damping = Dbgp_bgp.Flap_damping
module E = Dbgp_eval
module Chaos = Dbgp_eval.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let prefix = pfx "99.0.0.0/24"

let origin_ia n =
  Ia.originate ~prefix ~origin_asn:(asn n)
    ~next_hop:(Network.speaker_addr (asn n)) ()

(* A -- B -- C provider chain (A is C's grand-provider). *)
let chain () =
  let net = Network.create () in
  List.iter (fun n -> ignore (E.Harness.add_as net n)) [ 1; 2; 3 ];
  Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:Dbgp_bgp.Policy.To_customer ();
  Network.link net ~a:(asn 2) ~b:(asn 3) ~b_is:Dbgp_bgp.Policy.To_customer ();
  net

let best_at net n = Speaker.best (Network.speaker net (asn n)) prefix

(* ------------------------- fault model ------------------------- *)

let test_fault_model_deterministic () =
  let draws f = List.init 200 (fun _ -> Fault_model.drop f ~now:1. 1 2) in
  let f1 = Fault_model.create ~seed:5 () in
  Fault_model.set_loss f1 0.5;
  let f2 = Fault_model.create ~seed:5 () in
  Fault_model.set_loss f2 0.5;
  check "same seed, same drops" true (draws f1 = draws f2);
  check "drops roughly match probability" true
    (let d = Fault_model.dropped f1 in
     d > 50 && d < 150)

let test_fault_model_window () =
  let f = Fault_model.create ~seed:5 () in
  Fault_model.set_loss ~from:10. ~until:20. f 0.9;
  check "before window: never drops" false
    (List.exists Fun.id (List.init 50 (fun _ -> Fault_model.drop f ~now:9.9 1 2)));
  check "inside window: drops" true
    (List.exists Fun.id (List.init 50 (fun _ -> Fault_model.drop f ~now:15. 1 2)));
  check "after window: never drops" false
    (List.exists Fun.id (List.init 50 (fun _ -> Fault_model.drop f ~now:20. 1 2)))

let test_fault_model_per_link () =
  let f = Fault_model.create ~seed:5 () in
  Fault_model.set_link f ~a:1 ~b:2 ~loss:0.9 ~jitter:2.0 ();
  check "configured link drops" true
    (List.exists Fun.id (List.init 50 (fun _ -> Fault_model.drop f ~now:0. 2 1)));
  check "other links unaffected" false
    (List.exists Fun.id (List.init 50 (fun _ -> Fault_model.drop f ~now:0. 1 3)));
  check "jitter drawn within bound" true
    (let j = Fault_model.jitter f 1 2 in
     j >= 0. && j < 2.0);
  check "no jitter elsewhere" true (Fault_model.jitter f 1 3 = 0.)

let test_fault_model_validation () =
  let f = Fault_model.create ~seed:1 () in
  (* The closed interval is legal: 1.0 is a blackholed link, not an error. *)
  Fault_model.set_loss f 1.0;
  Fault_model.set_corruption f 1.0;
  Alcotest.check_raises "loss above 1 rejected"
    (Invalid_argument "Fault_model.set_loss: probability must be in [0, 1]")
    (fun () -> Fault_model.set_loss f 1.5);
  Alcotest.check_raises "negative loss rejected"
    (Invalid_argument "Fault_model.set_loss: probability must be in [0, 1]")
    (fun () -> Fault_model.set_loss f (-0.1));
  Alcotest.check_raises "per-link probability above 1 rejected"
    (Invalid_argument "Fault_model.set_link: probability must be in [0, 1]")
    (fun () -> Fault_model.set_link f ~a:1 ~b:2 ~loss:2.0 ())

let test_fault_model_blackhole () =
  (* loss = 1.0 must drop every message, deterministically. *)
  let f = Fault_model.create ~seed:3 () in
  Fault_model.set_loss f 1.0;
  check "every draw drops" true
    (List.for_all Fun.id (List.init 100 (fun _ -> Fault_model.drop f ~now:0. 1 2)));
  let net = chain () in
  Fault_model.set_loss f 1.0;
  Network.set_fault_model net f;
  Network.originate net (asn 1) (origin_ia 1);
  ignore (Network.run net);
  check "blackholed link: nothing converges" true (best_at net 2 = None)

let test_fault_model_mutate_deterministic () =
  let s = String.init 64 (fun i -> Char.chr (i * 3 land 0xFF)) in
  let muts seed =
    let f = Fault_model.create ~seed () in
    List.init 50 (fun _ -> Fault_model.mutate f s)
  in
  check "same seed, same mutations" true (muts 7 = muts 7);
  check "mutations actually damage bytes" true
    (List.exists (fun m -> m <> s) (muts 7))

(* ------------------------- link failure / recovery ------------------------- *)

let test_link_rejects_self_loop () =
  let net = Network.create () in
  ignore (E.Harness.add_as net 1);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Network.link: cannot link an AS to itself") (fun () ->
      Network.link net ~a:(asn 1) ~b:(asn 1)
        ~b_is:Dbgp_bgp.Policy.To_peer ())

let test_fail_link_clears_pending_mrai () =
  (* A batch queued under MRAI before the failure must never be delivered
     once the link is down. *)
  let net = chain () in
  Network.set_mrai net 5.;
  Network.originate net (asn 1) (origin_ia 1);
  Eq.schedule_at (Network.queue net) ~time:2. (fun () ->
      Network.fail_link net (asn 1) (asn 2));
  let stats = Network.run net in
  check "announce never reached B" true (best_at net 2 = None);
  check "nothing leaked downstream" true (best_at net 3 = None);
  check_int "no control messages delivered" 0 stats.Network.messages

let test_recover_link_restores_routes () =
  let net = chain () in
  Network.originate net (asn 1) (origin_ia 1);
  ignore (Network.run net);
  check "C converged" true (best_at net 3 <> None);
  Network.fail_link net (asn 1) (asn 2);
  ignore (Network.run net);
  check "route withdrawn everywhere" true
    (best_at net 2 = None && best_at net 3 = None);
  check "link reported down" false (Network.link_up net (asn 1) (asn 2));
  Network.recover_link net (asn 1) (asn 2);
  ignore (Network.run net);
  check "link back up" true (Network.link_up net (asn 1) (asn 2));
  check "routes restored via refresh" true
    (best_at net 2 <> None && best_at net 3 <> None)

let test_recover_link_unknown_pair () =
  let net = chain () in
  Alcotest.check_raises "never linked"
    (Invalid_argument "Network.recover_link: link was never configured")
    (fun () -> Network.recover_link net (asn 1) (asn 3))

let test_schedule_flap_validation () =
  let net = chain () in
  Alcotest.check_raises "up before down"
    (Invalid_argument "Network.schedule_flap: up_at must follow down_at")
    (fun () ->
      Network.schedule_flap net ~down_at:10. ~up_at:10. (asn 1) (asn 2))

(* ------------------------- graceful restart ------------------------- *)

let test_graceful_restart_flushes_after_window () =
  let net = chain () in
  Network.set_graceful_restart net (Some 10.);
  Network.originate net (asn 1) (origin_ia 1);
  ignore (Network.run net);
  Network.fail_link net (asn 1) (asn 2);
  (* Stale marking is synchronous: the route survives, flagged stale. *)
  check "B retains the route during the window" true (best_at net 2 <> None);
  check "route is marked stale" true
    (Speaker.is_stale (Network.speaker net (asn 2)) (Network.peer_of net (asn 1)) prefix);
  check "stale accounted" true (Network.stale_total net > 0);
  (* Peer never returns: the window timer must flush. *)
  ignore (Network.run net);
  check "flushed after the window" true
    (best_at net 2 = None && best_at net 3 = None);
  check_int "no stale leak" 0 (Network.stale_total net)

let test_graceful_restart_peer_returns_in_window () =
  let net = chain () in
  Network.set_graceful_restart net (Some 10.);
  Network.originate net (asn 1) (origin_ia 1);
  ignore (Network.run net);
  let t0 = Eq.now (Network.queue net) in
  Network.schedule_flap net ~down_at:(t0 +. 1.) ~up_at:(t0 +. 4.) (asn 1) (asn 2);
  ignore (Network.run net);
  check "route survived the restart" true
    (best_at net 2 <> None && best_at net 3 <> None);
  check_int "stale marks all cleared" 0 (Network.stale_total net)

(* ------------------------- damping in the decision path ------------------------- *)

let damp_params =
  { Damping.half_life = 1.;
    suppress_threshold = 1500.;
    reuse_threshold = 500.;
    withdraw_penalty = 1000.;
    attr_change_penalty = 500.;
    max_penalty = 4000. }

let test_speaker_damping_suppress_and_reuse () =
  let sp =
    Speaker.create
      (Speaker.config ~asn:(asn 2) ~addr:(ip "10.0.0.2") ())
  in
  let from = Peer.make ~asn:(asn 1) ~addr:(ip "10.0.0.1") in
  Speaker.add_neighbor sp
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer from);
  Speaker.set_damping sp (Some damp_params);
  let ia = Ia.originate ~prefix ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") () in
  let announce now = ignore (Speaker.receive ~now sp ~from (Speaker.Announce ia)) in
  let withdraw now = ignore (Speaker.receive ~now sp ~from (Speaker.Withdraw prefix)) in
  announce 0.;
  check "first announce selected" true (Speaker.best sp prefix <> None);
  withdraw 0.1;
  check "one flap: below suppression" false
    (Speaker.suppressed sp ~now:0.1 from prefix);
  announce 0.2;
  check "still selectable" true (Speaker.best sp prefix <> None);
  withdraw 0.3;
  check "second flap crosses the threshold" true
    (Speaker.suppressed sp ~now:0.3 from prefix);
  (* The flapping route is now invisible to selection. *)
  announce 0.4;
  check "suppressed announce not selected" true (Speaker.best sp prefix = None);
  let reuse = Speaker.take_reuse_events sp in
  check "reuse obligation queued" true (reuse <> []);
  let _, at = List.hd reuse in
  check "reuse scheduled in the future" true (at > 0.3);
  ignore (Speaker.reevaluate ~now:(at +. 0.1) sp prefix);
  check "released after penalty decay" true (Speaker.best sp prefix <> None)

let test_network_damping_suppresses_flapping_link () =
  let net = chain () in
  Network.set_damping net (Some damp_params);
  Network.originate net (asn 1) (origin_ia 1);
  ignore (Network.run net);
  let t0 = Eq.now (Network.queue net) in
  (* Flap the A-B link twice in quick succession: each cycle makes B send
     C a withdrawal, so C charges a withdraw penalty per flap, suppresses,
     and must recover via its reuse timer (serviced by the event loop). *)
  Network.schedule_flap net ~down_at:(t0 +. 1.) ~up_at:(t0 +. 2.) (asn 1) (asn 2);
  Network.schedule_flap net ~down_at:(t0 +. 3.) ~up_at:(t0 +. 4.) (asn 1) (asn 2);
  ignore (Network.run net);
  let c = Network.speaker net (asn 3) in
  check "penalty was charged at C" true
    (Speaker.flap_penalty c ~now:(Eq.now (Network.queue net))
       (Network.peer_of net (asn 2)) prefix > 0.);
  check "route recovered once damping released" true
    (best_at net 2 <> None && best_at net 3 <> None);
  check_int "no stale leak" 0 (Network.stale_total net)

(* --------------- corrupted triggers (RFC 7606 interplay) --------------- *)

let counter_of sp name =
  match Dbgp_obs.Metrics.find_counter (Speaker.metrics sp) name with
  | Some c -> Dbgp_obs.Metrics.count c
  | None -> 0

let solo_speaker () =
  let sp =
    Speaker.create (Speaker.config ~asn:(asn 2) ~addr:(ip "10.0.0.2") ())
  in
  let from = Peer.make ~asn:(asn 1) ~addr:(ip "10.0.0.1") in
  Speaker.add_neighbor sp
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer from);
  (sp, from)

let valid_ia () =
  Ia.originate ~prefix ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") ()

let test_graceful_restart_corrupted_refresh () =
  (* Peer restarts; its post-restart refresh arrives corrupted.  RFC 7606
     treat-as-withdraw is still an update for the prefix, so it must clear
     the stale mark (no leak) and withdraw the route. *)
  let sp, from = solo_speaker () in
  let ia = valid_ia () in
  ignore (Speaker.receive ~now:0. sp ~from (Speaker.Announce ia));
  Speaker.peer_down_graceful ~now:1. sp from;
  check "stale marked" true (Speaker.is_stale sp from prefix);
  let wire = Dbgp_core.Codec.encode ia ^ "\xde\xad" in
  let outcome, _ = Speaker.receive_wire ~now:2. sp ~from wire in
  check "treated as withdraw" true (outcome = Speaker.Rx_withdrawn);
  check "stale mark cleared" false (Speaker.is_stale sp from prefix);
  check_int "no stale leak" 0 (Speaker.stale_count sp);
  check "route withdrawn" true (Speaker.best sp prefix = None);
  check_int "verdict accounted" 1 (counter_of sp "errors.treat_as_withdraw")

let test_corrupted_update_charges_damping () =
  (* A corrupted flap is still a flap: treat-as-withdraw must start the
     damping penalty clock exactly like an explicit withdrawal would. *)
  let sp, from = solo_speaker () in
  Speaker.set_damping sp (Some damp_params);
  let ia = valid_ia () in
  ignore (Speaker.receive ~now:0. sp ~from (Speaker.Announce ia));
  check "no penalty after clean announce" true
    (Speaker.flap_penalty sp ~now:0. from prefix = 0.);
  let wire = Dbgp_core.Codec.encode ia ^ "\x00" in
  let outcome, _ = Speaker.receive_wire ~now:0.1 sp ~from wire in
  check "treated as withdraw" true (outcome = Speaker.Rx_withdrawn);
  check "penalty clock started" true
    (Speaker.flap_penalty sp ~now:0.1 from prefix > 0.);
  (* Two more corrupted cycles push the route over the suppress line. *)
  ignore (Speaker.receive ~now:0.2 sp ~from (Speaker.Announce ia));
  ignore (Speaker.receive_wire ~now:0.3 sp ~from wire);
  check "corrupted flaps suppress" true
    (Speaker.suppressed sp ~now:0.3 from prefix)

(* ------------------------- end-to-end chaos ------------------------- *)

let chaos_cfg = { Chaos.default with Chaos.ases = 50; seed = 9 }

let test_chaos_run_healthy () =
  let r = Chaos.run chaos_cfg in
  check "at least 3 links flapped" true (List.length r.Chaos.flapped >= 3);
  check "reconverged" true r.Chaos.reconverged;
  check_int "zero stale leaks" 0 r.Chaos.stale_leaks;
  check_int "no forwarding loops" 0 r.Chaos.forwarding_loops;
  check "flapped sessions all restored" true r.Chaos.sessions_restored;
  check "healthy" true (Chaos.healthy r)

let test_chaos_run_deterministic () =
  let r1 = Chaos.run chaos_cfg in
  let r2 = Chaos.run chaos_cfg in
  check "same seed, same flap schedule" true (r1.Chaos.flapped = r2.Chaos.flapped);
  check "same seed, identical stats" true
    (r1.Chaos.initial = r2.Chaos.initial && r1.Chaos.final = r2.Chaos.final);
  check "same seed, same drop count" true (r1.Chaos.dropped = r2.Chaos.dropped)

let test_chaos_corruption_accounted () =
  (* Force enough wire corruption that injections certainly occur, and
     demand the run stays healthy: every verdict counted, invariants hold. *)
  let r = Chaos.run { chaos_cfg with Chaos.corruption = 0.3 } in
  check "corruption injected" true (r.Chaos.corrupted > 0);
  check "verdicts cover every error class" true
    (List.length r.Chaos.error_verdicts
    = List.length Dbgp_core.Errors.all_classes);
  check "verdicts issued for corrupted updates" true
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Chaos.error_verdicts
     + r.Chaos.corruption_survived
    > 0);
  check "invariants hold under corruption" true
    (E.Invariants.ok r.Chaos.invariants);
  check "still healthy" true (Chaos.healthy r)

let test_chaos_budget_censors () =
  (* A full run needs thousands of events; 50 cannot even converge the
     initial dissemination.  The report must say so — censored, never
     healthy — rather than presenting the truncation point as a verdict. *)
  let r = Chaos.run { chaos_cfg with Chaos.budget = Some 50 } in
  check "initial phase exhausted its budget" true
    r.Chaos.initial.Network.exhausted;
  check "report censored" true r.Chaos.censored;
  check "censored run is never healthy" false (Chaos.healthy r);
  (* The same config without the cap quiesces and is healthy — the
     verdict flip is attributable to the budget alone. *)
  let full = Chaos.run chaos_cfg in
  check "uncapped run not censored" false full.Chaos.censored;
  check "uncapped run healthy" true (Chaos.healthy full)

let test_convergence_budget_censors () =
  let capped = E.Convergence.observe ~ases:40 ~budget:25 ~seed:7 () in
  check "capped observe censored" true capped.E.Convergence.censored;
  let full = E.Convergence.observe ~ases:40 ~seed:7 () in
  check "uncapped observe not censored" false full.E.Convergence.censored;
  check "censoring visibly truncates the run" true
    (capped.E.Convergence.messages < full.E.Convergence.messages);
  (* A budget generous enough to reach quiescence must not censor. *)
  let roomy = E.Convergence.observe ~ases:40 ~budget:1_000_000 ~seed:7 () in
  check "roomy budget not censored" false roomy.E.Convergence.censored;
  check "roomy budget matches the uncapped run" true
    (roomy.E.Convergence.messages = full.E.Convergence.messages)

let test_chaos_seeds_vary () =
  let r1 = Chaos.run chaos_cfg in
  let r2 = Chaos.run { chaos_cfg with Chaos.seed = 10 } in
  (* Different seeds still satisfy the invariants... *)
  check "other seed healthy too" true (Chaos.healthy r2);
  (* ...but produce a genuinely different run. *)
  check "different runs" true
    (r1.Chaos.flapped <> r2.Chaos.flapped
    || r1.Chaos.final <> r2.Chaos.final)

let () =
  Alcotest.run "chaos"
    [ ("fault-model",
       [ Alcotest.test_case "deterministic" `Quick test_fault_model_deterministic;
         Alcotest.test_case "loss window" `Quick test_fault_model_window;
         Alcotest.test_case "per-link overrides" `Quick test_fault_model_per_link;
         Alcotest.test_case "validation" `Quick test_fault_model_validation;
         Alcotest.test_case "blackhole at loss 1.0" `Quick
           test_fault_model_blackhole;
         Alcotest.test_case "mutate deterministic" `Quick
           test_fault_model_mutate_deterministic ]);
      ("links",
       [ Alcotest.test_case "self-loop rejected" `Quick test_link_rejects_self_loop;
         Alcotest.test_case "fail clears MRAI batch" `Quick
           test_fail_link_clears_pending_mrai;
         Alcotest.test_case "recover restores routes" `Quick
           test_recover_link_restores_routes;
         Alcotest.test_case "recover unknown pair" `Quick
           test_recover_link_unknown_pair;
         Alcotest.test_case "flap validation" `Quick test_schedule_flap_validation ]);
      ("graceful-restart",
       [ Alcotest.test_case "flush after window" `Quick
           test_graceful_restart_flushes_after_window;
         Alcotest.test_case "peer returns in window" `Quick
           test_graceful_restart_peer_returns_in_window ]);
      ("damping",
       [ Alcotest.test_case "speaker suppress/reuse" `Quick
           test_speaker_damping_suppress_and_reuse;
         Alcotest.test_case "flapping link suppressed" `Quick
           test_network_damping_suppresses_flapping_link ]);
      ("corrupted-triggers",
       [ Alcotest.test_case "graceful restart, corrupted refresh" `Quick
           test_graceful_restart_corrupted_refresh;
         Alcotest.test_case "corrupted update charges damping" `Quick
           test_corrupted_update_charges_damping ]);
      ("chaos",
       [ Alcotest.test_case "healthy run" `Quick test_chaos_run_healthy;
         Alcotest.test_case "deterministic" `Quick test_chaos_run_deterministic;
         Alcotest.test_case "corruption accounted" `Quick
           test_chaos_corruption_accounted;
         Alcotest.test_case "budget exhaustion censors" `Quick
           test_chaos_budget_censors;
         Alcotest.test_case "convergence budget censors" `Quick
           test_convergence_budget_censors;
         Alcotest.test_case "seeds vary" `Quick test_chaos_seeds_vary ]) ]
