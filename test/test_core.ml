open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Codec = Dbgp_core.Codec
module Filters = Dbgp_core.Filters
module Dm = Dbgp_core.Decision_module
module Adj_rib_in = Dbgp_core.Adj_rib_in
module Factory = Dbgp_core.Factory
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Policy = Dbgp_bgp.Policy

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let peer n = Peer.make ~asn:(asn n) ~addr:(Ipv4.of_octets 10 0 0 n)

let proto_a = Protocol_id.register ~kind:Protocol_id.Critical_fix "test-fix-a"
let proto_b = Protocol_id.register ~kind:Protocol_id.Critical_fix "test-fix-b"

let base_ia ?(prefix = "99.0.0.0/24") () =
  Ia.originate ~prefix:(pfx prefix) ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") ()

(* ------------------------- Value ------------------------- *)

let test_value_roundtrip () =
  let vs =
    [ Value.Int 42; Value.Str "hi"; Value.Bytes "\x00\xff"; Value.Addr (ip "1.2.3.4");
      Value.Pfx (pfx "10.0.0.0/8"); Value.Asn (asn 65000);
      Value.List [ Value.Int 1; Value.Pair (Value.Str "a", Value.Int 2) ];
      Value.Pair (Value.List [], Value.Bytes "") ]
  in
  List.iter
    (fun v ->
      let w = Dbgp_wire.Writer.create () in
      Value.encode w v;
      let v' = Value.decode (Dbgp_wire.Reader.of_string (Dbgp_wire.Writer.contents w)) in
      check "roundtrip" true (Value.equal v v'))
    vs

let test_value_accessors () =
  check "as_int" true (Value.as_int (Value.Int 3) = Some 3);
  check "as_int wrong" true (Value.as_int (Value.Str "3") = None);
  check "as_pair" true
    (Value.as_pair (Value.Pair (Value.Int 1, Value.Int 2)) = Some (Value.Int 1, Value.Int 2));
  check "wire_size positive" true (Value.wire_size (Value.Str "abc") > 3)

(* ------------------------- Ia ------------------------- *)

let test_ia_originate () =
  let ia = base_ia () in
  check_int "pv length 1" 1 (Ia.path_length ia);
  check "next hop" true (Ia.next_hop ia = Some (ip "10.0.0.1"));
  check "bgp registered" true (Protocol_id.Set.mem Protocol_id.bgp (Ia.protocols ia));
  check "no loop" false (Ia.has_loop ia)

let test_ia_prepend_loop () =
  let ia = base_ia () |> Ia.prepend_as (asn 2) |> Ia.prepend_as (asn 3) in
  check_int "pv 3" 3 (Ia.path_length ia);
  check "asns in order" true (Ia.asns_on_path ia = [ asn 3; asn 2; asn 1 ]);
  check "loop detected" true (Ia.has_loop (Ia.prepend_as (asn 1) ia))

let test_ia_descriptors_shared () =
  let ia =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a; proto_b ] ~field:"metric" (Value.Int 7)
  in
  check "a sees it" true (Ia.find_path_descriptor ~proto:proto_a ~field:"metric" ia = Some (Value.Int 7));
  check "b sees it" true (Ia.find_path_descriptor ~proto:proto_b ~field:"metric" ia = Some (Value.Int 7));
  check "bgp does not" true (Ia.find_path_descriptor ~proto:Protocol_id.bgp ~field:"metric" ia = None);
  (* replace same (owners, field) *)
  let ia2 = Ia.set_path_descriptor ~owners:[ proto_b; proto_a ] ~field:"metric" (Value.Int 9) ia in
  check "replaced (owner order canonical)" true
    (Ia.find_path_descriptor ~proto:proto_a ~field:"metric" ia2 = Some (Value.Int 9));
  check_int "no duplicate descriptor" (List.length ia.Ia.path_descriptors)
    (List.length ia2.Ia.path_descriptors)

let test_ia_remove_protocol () =
  let ia =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a; proto_b ] ~field:"shared" (Value.Int 1)
    |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"solo" (Value.Int 2)
    |> Ia.add_island_descriptor ~island:(Island_id.named "X") ~proto:proto_a ~field:"f" (Value.Int 3)
  in
  let ia' = Ia.remove_protocol proto_a ia in
  check "solo descriptor gone" true (Ia.find_path_descriptor ~proto:proto_a ~field:"solo" ia' = None);
  check "shared survives for b" true
    (Ia.find_path_descriptor ~proto:proto_b ~field:"shared" ia' = Some (Value.Int 1));
  check "island descriptor gone" true (Ia.find_island_descriptors ~proto:proto_a ia' = []);
  check "a no longer listed" false (Protocol_id.Set.mem proto_a (Ia.protocols ia'))

let test_ia_island_abstraction () =
  let isl = Island_id.named "W" in
  let ia = base_ia () |> Ia.prepend_as (asn 2) |> Ia.prepend_as (asn 3) in
  let abstracted = Ia.abstract_island ~island:isl ~members:[ asn 3; asn 2 ] ia in
  check_int "collapsed to island + origin" 2 (Ia.path_length abstracted);
  check "island on path" true
    (List.exists (Island_id.equal isl) (Ia.islands_on_path abstracted));
  (* only the leading run is abstracted *)
  let partial = Ia.abstract_island ~island:isl ~members:[ asn 2 ] ia in
  check_int "non-leading member untouched" 3 (Ia.path_length partial)

let test_ia_membership () =
  let isl = Island_id.named "M" in
  let ia =
    base_ia () |> Ia.prepend_as (asn 2)
    |> Ia.declare_membership ~island:isl ~members:[ asn 2 ]
  in
  check "island of member" true (Ia.island_of_asn ia (asn 2) = Some isl);
  check "non-member" true (Ia.island_of_asn ia (asn 1) = None);
  check "islands_on_path includes declared" true
    (List.exists (Island_id.equal isl) (Ia.islands_on_path ia));
  (* redeclaration replaces *)
  let ia2 = Ia.declare_membership ~island:isl ~members:[ asn 1 ] ia in
  check "replaced" true (Ia.island_of_asn ia2 (asn 2) = None)

let test_ia_island_descriptors () =
  let isl = Island_id.named "S" in
  let ia =
    base_ia ()
    |> Ia.add_island_descriptor ~island:isl ~proto:proto_a ~field:"portal" (Value.Addr (ip "9.9.9.9"))
  in
  check "find" true
    (Ia.find_island_descriptor ~island:isl ~proto:proto_a ~field:"portal" ia
    = Some (Value.Addr (ip "9.9.9.9")));
  check "wrong island" true
    (Ia.find_island_descriptor ~island:(Island_id.named "T") ~proto:proto_a ~field:"portal" ia = None);
  check_int "by proto" 1 (List.length (Ia.find_island_descriptors ~proto:proto_a ia))

(* ------------------------- Codec ------------------------- *)

let rich_ia () =
  base_ia ()
  |> Ia.prepend_as (asn 2)
  |> Ia.prepend_island (Island_id.named "A")
  |> Ia.declare_membership ~island:(Island_id.named "B") ~members:[ asn 2 ]
  |> Ia.set_path_descriptor ~owners:[ proto_a; proto_b; Protocol_id.bgp ] ~field:"m" (Value.Int 5)
  |> Ia.add_island_descriptor ~island:(Island_id.named "A") ~proto:Protocol_id.scion
       ~field:"paths" (Value.List [ Value.Str "r1"; Value.Str "r2" ])

let test_codec_roundtrip () =
  let ia = rich_ia () in
  let ia' = Codec.decode (Codec.encode ia) in
  check "roundtrip" true (Ia.equal ia ia')

let test_codec_size_breakdown () =
  let ia = rich_ia () in
  check_int "size matches encode" (String.length (Codec.encode ia)) (Codec.size ia);
  let b = Codec.breakdown ia in
  check "base positive" true (b.Codec.base > 0);
  check "cf positive" true (b.Codec.critical_fix > 0);
  check "cr positive" true (b.Codec.custom_replacement > 0);
  check "sharing saves" true (b.Codec.shared_savings > 0)

let test_codec_sharing_smaller () =
  (* One descriptor owned by 3 protocols must encode smaller than three
     separate copies. *)
  let shared =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a; proto_b; Protocol_id.wiser ]
         ~field:"payload" (Value.Bytes (String.make 100 'p'))
  in
  let copied =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"payload"
         (Value.Bytes (String.make 100 'p'))
    |> Ia.set_path_descriptor ~owners:[ proto_b ] ~field:"payload2"
         (Value.Bytes (String.make 100 'p'))
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"payload3"
         (Value.Bytes (String.make 100 'p'))
  in
  check "sharing is smaller" true (Codec.size shared < Codec.size copied)

let test_codec_unknown_protocol_passes () =
  (* A speaker can decode IAs naming protocols it never saw: the registry
     grows on demand. *)
  let ia =
    base_ia ()
    |> Ia.set_path_descriptor
         ~owners:[ Protocol_id.register "exotic-proto-xyz" ]
         ~field:"blob" (Value.Bytes "??")
  in
  let ia' = Codec.decode (Codec.encode ia) in
  check "exotic preserved" true
    (Protocol_id.Set.exists
       (fun p -> Protocol_id.name p = "exotic-proto-xyz")
       (Ia.protocols ia'))

(* ------------------- Codec: batched frames ------------------- *)

module Errors = Dbgp_core.Errors
module W = Dbgp_wire.Writer

let batch_ias () =
  let head = rich_ia () in
  head
  :: List.map
       (fun s -> Ia.with_prefix (pfx s) head)
       [ "99.1.0.0/24"; "99.2.0.0/16"; "99.3.4.0/30" ]

(* Pull the frame apart with a Reader so corruption tests can rebuild it
   piecewise: [varint count; count × delimited NLRI entry; delimited
   attribute block]. *)
let split_batch_wire wire =
  let r = Dbgp_wire.Reader.of_string wire in
  let n = Dbgp_wire.Reader.varint r in
  let entries = List.init n (fun _ -> Dbgp_wire.Reader.delimited r) in
  let attrs = Dbgp_wire.Reader.delimited r in
  (entries, attrs)

let test_codec_batch_roundtrip () =
  let ias = batch_ias () in
  (match Codec.decode_batch_robust (Codec.encode_batch ias) with
  | Ok (Codec.Batch_routes (ias', discards)) ->
    check_int "all routes survive" (List.length ias) (List.length ias');
    check "no discards" true (discards = []);
    List.iter2 (fun a b -> check "ia roundtrip" true (Ia.equal a b)) ias ias';
    (* The decoder fans one attribute set out to every NLRI prefix:
       physical sharing, not per-route copies. *)
    (match ias' with
    | head :: rest ->
      List.iter
        (fun (ia : Ia.t) ->
          check "pv shared" true (ia.Ia.path_vector == head.Ia.path_vector);
          check "pds shared" true
            (ia.Ia.path_descriptors == head.Ia.path_descriptors))
        rest
    | [] -> Alcotest.fail "empty batch decoded")
  | Ok (Codec.Batch_withdraw _) -> Alcotest.fail "clean batch became withdraw"
  | Error e -> Alcotest.fail ("clean batch rejected: " ^ e.Errors.reason));
  (* A one-route batch is still a valid frame. *)
  (match Codec.decode_batch_robust (Codec.encode_batch [ rich_ia () ]) with
  | Ok (Codec.Batch_routes ([ ia' ], [])) ->
    check "singleton roundtrip" true (Ia.equal (rich_ia ()) ia')
  | _ -> Alcotest.fail "singleton batch mangled");
  Alcotest.check_raises "empty batch rejected"
    (Invalid_argument "Codec.encode_batch: empty batch") (fun () ->
      ignore (Codec.encode_batch []))

let test_codec_batch_salvage () =
  let ias = batch_ias () in
  let wire = Codec.encode_batch ias in
  let entries, attrs = split_batch_wire wire in
  let rebuild entries attrs =
    let w = W.create () in
    W.varint w (List.length entries);
    List.iter (W.delimited w) entries;
    W.delimited w attrs;
    W.contents w
  in
  (* A malformed prefix inside an intact NLRI frame costs that entry
     alone ("\x2a" claims /42). *)
  (match
     Codec.decode_batch_robust
       (rebuild (List.mapi (fun i e -> if i = 1 then "\x2a" else e) entries) attrs)
   with
  | Ok (Codec.Batch_routes (ias', [ d ])) ->
    check_int "one route lost" (List.length ias - 1) (List.length ias');
    check "loss is discard-attribute" true (d.Errors.cls = Errors.Discard_attribute);
    check "head prefix survives" true
      (List.exists (fun (ia : Ia.t) -> Prefix.equal ia.Ia.prefix (pfx "99.0.0.0/24")) ias')
  | _ -> Alcotest.fail "bad NLRI entry not salvaged alone");
  (* Attribute block truncated: routes can't be trusted, reachability
     must not be either — treat every salvaged prefix as withdrawn. *)
  (match Codec.decode_batch_robust (String.sub wire 0 (String.length wire - 4)) with
  | Ok (Codec.Batch_withdraw (prefixes, e)) ->
    check_int "all prefixes salvaged" (List.length ias) (List.length prefixes);
    check "treat-as-withdraw" true (e.Errors.cls = Errors.Treat_as_withdraw)
  | _ -> Alcotest.fail "truncated attr block not treat-as-withdraw");
  (* Trailing bytes after the attribute block: same ladder rung. *)
  (match Codec.decode_batch_robust (wire ^ "\x00") with
  | Ok (Codec.Batch_withdraw (_, e)) ->
    check "trailing bytes withdraw" true (e.Errors.cls = Errors.Treat_as_withdraw)
  | _ -> Alcotest.fail "trailing bytes not treat-as-withdraw");
  (* NLRI count tampered beyond the buffer: framing is lost, nothing
     downstream can be salvaged. *)
  let bombed = "\x7f" ^ String.sub wire 1 (String.length wire - 1) in
  (match Codec.decode_batch_robust bombed with
  | Error e -> check "count bomb resets" true (e.Errors.cls = Errors.Session_reset)
  | Ok _ -> Alcotest.fail "count bomb accepted")

let test_codec_withdraw_batch () =
  let prefixes = List.map pfx [ "99.0.0.0/24"; "10.0.0.0/8"; "203.0.113.0/25" ] in
  let wire = Codec.encode_withdraw_batch prefixes in
  (match Codec.decode_withdraw_batch_robust wire with
  | Ok (ps, []) ->
    check "withdraw roundtrip" true (List.for_all2 Prefix.equal prefixes ps)
  | _ -> Alcotest.fail "clean withdraw batch mangled");
  (* Trailing garbage is noted and dropped, not fatal. *)
  (match Codec.decode_withdraw_batch_robust (wire ^ "\xde\xad") with
  | Ok (ps, [ d ]) ->
    check_int "prefixes intact" (List.length prefixes) (List.length ps);
    check "garbage noted" true (d.Errors.cls = Errors.Discard_attribute)
  | _ -> Alcotest.fail "trailing garbage mishandled");
  (* One bad entry is discarded alone. *)
  let w = W.create () in
  W.varint w 3;
  let scratch = W.create () in
  W.prefix scratch (pfx "99.0.0.0/24");
  W.delimited w (W.contents scratch);
  W.delimited w "\x2a";
  W.reset scratch;
  W.prefix scratch (pfx "10.0.0.0/8");
  W.delimited w (W.contents scratch);
  (match Codec.decode_withdraw_batch_robust (W.contents w) with
  | Ok (ps, [ d ]) ->
    check_int "two survive" 2 (List.length ps);
    check "bad entry discarded" true (d.Errors.cls = Errors.Discard_attribute)
  | _ -> Alcotest.fail "bad withdraw entry not salvaged alone");
  (* Count bomb → framing lost. *)
  (match Codec.decode_withdraw_batch_robust ("\x7f" ^ String.sub wire 1 (String.length wire - 1)) with
  | Error e -> check "withdraw bomb resets" true (e.Errors.cls = Errors.Session_reset)
  | Ok _ -> Alcotest.fail "withdraw count bomb accepted");
  Alcotest.check_raises "empty withdraw batch rejected"
    (Invalid_argument "Codec.encode_withdraw_batch: empty batch") (fun () ->
      ignore (Codec.encode_withdraw_batch []))

(* -------------------- Attr_table lifecycle -------------------- *)

module Attr_table = Dbgp_core.Attr_table

let test_attr_table_lifecycle () =
  Attr_table.reset ();
  let a = rich_ia () in
  let b = Ia.with_prefix (pfx "99.1.0.0/24") (rich_ia ()) in
  (* b rebuilds the same attribute fields as fresh lists: equal but not
     physically shared until the table canonicalizes them. *)
  check "same attrs" true (Ia.same_attrs a b);
  let a' = Attr_table.share a in
  let b' = Attr_table.share b in
  check_int "one resident set" 1 (Attr_table.occupancy ());
  check "canonicalized to one physical set" true
    (a'.Ia.path_vector == b'.Ia.path_vector
    && a'.Ia.path_descriptors == b'.Ia.path_descriptors);
  check "prefixes kept distinct" false (Prefix.equal a'.Ia.prefix b'.Ia.prefix);
  check "refcount 2" true (Attr_table.refcount a' = Some 2);
  let id0 = Attr_table.id_of a' in
  check "dense id assigned" true (id0 <> None);
  (* A different attribute set gets its own id. *)
  let c = Attr_table.share (base_ia ~prefix:"88.0.0.0/24" ()) in
  check_int "two resident sets" 2 (Attr_table.occupancy ());
  check "distinct ids" true (Attr_table.id_of c <> id0);
  (* Releases retire the entry only at refcount zero; its id returns to
     the free list and is handed out again. *)
  Attr_table.release a';
  check "still resident after one release" true (Attr_table.refcount b' = Some 1);
  Attr_table.release b';
  check "evicted at zero" true (Attr_table.refcount b' = None);
  check_int "one set left" 1 (Attr_table.occupancy ());
  let d = Attr_table.share (rich_ia ()) in
  check "freed id reused" true (Attr_table.id_of d = id0);
  (* Releasing a non-resident set is a no-op: evict c, then release it
     again. *)
  Attr_table.release c;
  check_int "c evicted" 1 (Attr_table.occupancy ());
  Attr_table.release c;
  check_int "no-op release" 1 (Attr_table.occupancy ());
  let m = Attr_table.metrics () in
  let counter name =
    match Dbgp_obs.Metrics.find_counter m name with
    | Some c -> Dbgp_obs.Metrics.count c
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  check "hits counted" true (counter "attr_table.hits" >= 1);
  check "misses counted" true (counter "attr_table.misses" >= 2);
  check "evictions counted" true (counter "attr_table.evictions" >= 1);
  Attr_table.reset ()

(* ------------------------- Filters ------------------------- *)

let test_filters_loops () =
  let looped = base_ia () |> Ia.prepend_as (asn 2) |> Ia.prepend_as (asn 1) in
  check "loop rejected" true (Filters.reject_loops looped = None);
  check "clean accepted" true (Filters.reject_loops (base_ia ()) <> None)

let test_filters_drop_keep () =
  let ia =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"x" (Value.Int 1)
    |> Ia.set_path_descriptor ~owners:[ proto_b ] ~field:"y" (Value.Int 2)
  in
  ( match Filters.drop_protocol proto_a ia with
    | Some ia' ->
      check "a dropped" true (Ia.find_path_descriptor ~proto:proto_a ~field:"x" ia' = None);
      check "b kept" true (Ia.find_path_descriptor ~proto:proto_b ~field:"y" ia' <> None)
    | None -> Alcotest.fail "drop_protocol never drops the IA" );
  match Filters.keep_only (Protocol_id.Set.singleton Protocol_id.bgp) ia with
  | Some ia' ->
    check "only bgp left" true
      (Protocol_id.Set.equal (Ia.protocols ia') (Protocol_id.Set.singleton Protocol_id.bgp))
  | None -> Alcotest.fail "keep_only never drops the IA"

let test_filters_compose () =
  let bump = Filters.prepend_as (asn 50) in
  let both = Filters.chain [ bump; bump ] in
  ( match both (base_ia ()) with
    | Some ia -> check_int "two prepends" 3 (Ia.path_length ia)
    | None -> Alcotest.fail "chain dropped" );
  check "reject short-circuits" true (Filters.compose Filters.reject bump (base_ia ()) = None)

let test_filters_max_size () =
  let big =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"blob"
         (Value.Bytes (String.make 5000 'b'))
  in
  check "oversize dropped" true (Filters.max_size 1000 big = None);
  check "small passes" true (Filters.max_size 1000 (base_ia ()) <> None)

let test_filters_when () =
  let only_for_24 =
    Filters.when_ (fun ia -> Prefix.length ia.Ia.prefix = 24) Filters.reject
  in
  check "predicate true drops" true (only_for_24 (base_ia ()) = None);
  check "predicate false passes" true (only_for_24 (base_ia ~prefix:"99.0.0.0/16" ()) <> None)

(* ------------------------- decision module / db / factory ------------------------- *)

let test_bgp_module_select () =
  let m = Dm.bgp () in
  let mk peer_n hops =
    { Dm.from_peer = Some (peer peer_n);
      ia = List.fold_left (fun ia n -> Ia.prepend_as (asn n) ia) (base_ia ()) hops }
  in
  let short = mk 5 [ 2 ] and long = mk 4 [ 2; 3 ] in
  check "shortest wins" true (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ long; short ] = Some short);
  check "empty none" true (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [] = None);
  let p1 = mk 1 [ 2 ] and p2 = mk 2 [ 3 ] in
  check "tie lowest peer" true (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ p2; p1 ] = Some p1)

let test_ia_db () =
  let db = Adj_rib_in.create () in
  let ia = base_ia () in
  Adj_rib_in.set db ~peer:(peer 1) ia.Ia.prefix ia;
  let ia7 = Ia.prepend_as (asn 7) ia in
  Adj_rib_in.set db ~peer:(peer 2) ia7.Ia.prefix ia7;
  check_int "two candidates" 2 (List.length (Adj_rib_in.candidates db (pfx "99.0.0.0/24")));
  check "find" true (Adj_rib_in.find db ~peer:(peer 1) (pfx "99.0.0.0/24") = Some ia);
  Adj_rib_in.remove db ~peer:(peer 1) (pfx "99.0.0.0/24");
  check_int "one left" 1 (List.length (Adj_rib_in.candidates db (pfx "99.0.0.0/24")));
  let ia98 = base_ia ~prefix:"98.0.0.0/24" () in
  Adj_rib_in.set db ~peer:(peer 2) ia98.Ia.prefix ia98;
  let affected = Adj_rib_in.drop_peer db ~peer:(peer 2) in
  check_int "both prefixes affected" 2 (List.length affected);
  check_int "empty" 0 (Adj_rib_in.size db)

let test_factory_passthrough () =
  let incoming =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"alien" (Value.Int 1)
  in
  let supported = Protocol_id.Set.singleton Protocol_id.bgp in
  let out =
    Factory.build ~passthrough:true ~supported ~me:(asn 9) ~my_addr:(ip "10.0.0.9")
      ~contributions:[] incoming
  in
  check "alien preserved" true (Ia.find_path_descriptor ~proto:proto_a ~field:"alien" out <> None);
  check "prepended" true (List.mem (asn 9) (Ia.asns_on_path out));
  check "next hop rewritten" true (Ia.next_hop out = Some (ip "10.0.0.9"));
  let stripped =
    Factory.build ~passthrough:false ~supported ~me:(asn 9) ~my_addr:(ip "10.0.0.9")
      ~contributions:[] incoming
  in
  check "alien stripped without passthrough" true
    (Ia.find_path_descriptor ~proto:proto_a ~field:"alien" stripped = None)

let test_factory_contributions_order () =
  let log = ref [] in
  let c name ia = log := name :: !log; ia in
  ignore
    (Factory.build ~passthrough:true
       ~supported:(Protocol_id.Set.singleton Protocol_id.bgp) ~me:(asn 9)
       ~my_addr:(ip "10.0.0.9")
       ~contributions:[ c "first"; c "second" ]
       (base_ia ()));
  check "applied in order" true (List.rev !log = [ "first"; "second" ])

(* ------------------------- Speaker ------------------------- *)

let mk_speaker ?island ?(passthrough = true) n =
  Speaker.create
    (Speaker.config ?island ~passthrough ~asn:(asn n) ~addr:(Ipv4.of_octets 10 0 0 n) ())

let test_speaker_originate_and_export () =
  let s = mk_speaker 1 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 2));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_peer (peer 3));
  let out = Speaker.originate s (base_ia ()) in
  check_int "announced to both (local routes go everywhere)" 2 (List.length out);
  check "best installed" true (Speaker.best s (pfx "99.0.0.0/24") <> None)

let test_speaker_receive_prepend () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 6));
  let out = Speaker.receive s ~from:(peer 1) (Speaker.Announce (base_ia ())) in
  (* must not echo back to the sender (split horizon): only to 6 *)
  check_int "one announcement" 1 (List.length out);
  ( match out with
    | [ (to_, Speaker.Announce ia) ] ->
      check "to provider" true (Peer.equal to_ (peer 6));
      check "my asn prepended" true (List.mem (asn 5) (Ia.asns_on_path ia))
    | _ -> Alcotest.fail "expected a single announce" )

let test_speaker_valley_free () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 6));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 7));
  let out = Speaker.receive s ~from:(peer 1) (Speaker.Announce (base_ia ())) in
  (* learned from a provider: export only to customers *)
  check_int "only customer hears it" 1 (List.length out);
  match out with
  | [ (to_, _) ] -> check "customer 7" true (Peer.equal to_ (peer 7))
  | _ -> Alcotest.fail "expected one announcement"

let test_speaker_loop_rejected () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  let looped = base_ia () |> Ia.prepend_as (asn 2) |> Ia.prepend_as (asn 1) in
  let out = Speaker.receive s ~from:(peer 1) (Speaker.Announce looped) in
  check "nothing selected" true (Speaker.best s (pfx "99.0.0.0/24") = None);
  check "nothing sent" true (out = [])

let test_speaker_own_as_rejected () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  (* The IA already contains AS 5: accepting it would loop. *)
  let ia = base_ia () |> Ia.prepend_as (asn 5) |> Ia.prepend_as (asn 2) in
  ignore (Speaker.receive s ~from:(peer 1) (Speaker.Announce ia));
  match Speaker.best s (pfx "99.0.0.0/24") with
  | None -> ()
  | Some chosen ->
    (* selection is fine, but re-advertisement would loop; ensure the
       factory output does loop-detect downstream *)
    check "chosen retains path" true
      (Ia.has_loop (Ia.prepend_as (asn 5) chosen.Speaker.candidate.Dm.ia))

let test_speaker_withdraw () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 6));
  ignore (Speaker.receive s ~from:(peer 1) (Speaker.Announce (base_ia ())));
  check "installed" true (Speaker.best s (pfx "99.0.0.0/24") <> None);
  let out = Speaker.receive s ~from:(peer 1) (Speaker.Withdraw (pfx "99.0.0.0/24")) in
  check "removed" true (Speaker.best s (pfx "99.0.0.0/24") = None);
  check "withdraw propagated" true
    (List.exists (function _, Speaker.Withdraw _ -> true | _ -> false) out)

let test_speaker_better_path_switch () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 2));
  let long = base_ia () |> Ia.prepend_as (asn 2) |> Ia.prepend_as (asn 3) in
  ignore (Speaker.receive s ~from:(peer 1) (Speaker.Announce long));
  let best1 = Speaker.best s (pfx "99.0.0.0/24") in
  ignore (Speaker.receive s ~from:(peer 2) (Speaker.Announce (base_ia ()))) ;
  let best2 = Speaker.best s (pfx "99.0.0.0/24") in
  check "switched to shorter" true
    ( match (best1, best2) with
      | Some b1, Some b2 ->
        Ia.path_length b1.Speaker.candidate.Dm.ia = 3
        && Ia.path_length b2.Speaker.candidate.Dm.ia = 1
      | _ -> false )

let test_speaker_peer_down () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 6));
  ignore (Speaker.receive s ~from:(peer 1) (Speaker.Announce (base_ia ())));
  let out = Speaker.peer_down s (peer 1) in
  check "route gone" true (Speaker.best s (pfx "99.0.0.0/24") = None);
  check "withdraws flow" true
    (List.exists (function _, Speaker.Withdraw _ -> true | _ -> false) out)

let test_speaker_legacy_downgrade () =
  let s = mk_speaker 5 in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s
    (Speaker.neighbor ~dbgp_capable:false ~relationship:Policy.To_provider (peer 6));
  let fancy =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"x" (Value.Int 1)
    |> Ia.declare_membership ~island:(Island_id.named "Z") ~members:[ asn 1 ]
  in
  let out = Speaker.receive s ~from:(peer 1) (Speaker.Announce fancy) in
  match out with
  | [ (_, Speaker.Announce ia) ] ->
    check "stripped to bgp" true
      (Protocol_id.Set.equal (Ia.protocols ia) (Protocol_id.Set.singleton Protocol_id.bgp));
    check "membership cleared" true (ia.Ia.membership = [])
  | _ -> Alcotest.fail "expected one announcement"

let test_speaker_island_egress () =
  let isl = Island_id.named "HID" in
  let s =
    Speaker.create
      (Speaker.config ~island:isl ~island_members:[ asn 5 ]
         ~hide_island_interior:true ~asn:(asn 5) ~addr:(Ipv4.of_octets 10 0 0 5) ())
  in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 6));
  let out = Speaker.receive s ~from:(peer 1) (Speaker.Announce (base_ia ())) in
  match out with
  | [ (_, Speaker.Announce ia) ] ->
    check "island id replaces my ASN" true
      (List.exists (Path_elem.mentions_island isl) ia.Ia.path_vector);
    check "my ASN hidden" false (List.mem (asn 5) (Ia.asns_on_path ia))
  | _ -> Alcotest.fail "expected one announcement"

let test_speaker_active_protocol () =
  let s = mk_speaker 5 in
  check "default bgp" true
    (Protocol_id.equal (Speaker.active_for s (pfx "99.0.0.0/24")) Protocol_id.bgp);
  Alcotest.check_raises "unknown module"
    (Invalid_argument "Speaker.set_active: no module registered for protocol")
    (fun () -> Speaker.set_active s (pfx "99.0.0.0/24") proto_a);
  let m = { (Dm.bgp ()) with Dm.protocol = proto_a } in
  Speaker.add_module s m;
  Speaker.set_active s (pfx "99.0.0.0/16") proto_a;
  check "longest-match active" true
    (Protocol_id.equal (Speaker.active_for s (pfx "99.0.0.5/32")) proto_a);
  check "outside range stays bgp" true
    (Protocol_id.equal (Speaker.active_for s (pfx "98.0.0.0/24")) Protocol_id.bgp)

let test_speaker_global_import_filter () =
  let s =
    Speaker.create
      (Speaker.config ~global_import:(Filters.drop_protocol proto_a) ~asn:(asn 5)
         ~addr:(Ipv4.of_octets 10 0 0 5) ())
  in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  let ia = base_ia () |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"x" (Value.Int 1) in
  ignore (Speaker.receive s ~from:(peer 1) (Speaker.Announce ia));
  match Speaker.best s (pfx "99.0.0.0/24") with
  | Some chosen ->
    check "gulf operator removed the protocol" true
      (Ia.find_path_descriptor ~proto:proto_a ~field:"x" chosen.Speaker.candidate.Dm.ia = None)
  | None -> Alcotest.fail "route should still be accepted"

let test_ia_next_hop_owner_preserved () =
  (* A shared next-hop descriptor keeps its owner set across hop-by-hop
     rewrites (Figure 4 shows next hop shared by Wiser, BGP, BGPSec). *)
  let ia =
    base_ia ()
    |> Ia.set_path_descriptor
         ~owners:[ Protocol_id.bgp; Protocol_id.wiser ]
         ~field:Ia.field_next_hop (Value.Addr (ip "1.1.1.1"))
  in
  let ia' = Ia.with_next_hop (ip "2.2.2.2") ia in
  check "rewritten" true (Ia.next_hop ia' = Some (ip "2.2.2.2"));
  check "wiser still co-owns" true
    (Ia.find_path_descriptor ~proto:Protocol_id.wiser ~field:Ia.field_next_hop ia'
    = Some (Value.Addr (ip "2.2.2.2")))

let test_speaker_global_export_filter () =
  let s =
    Speaker.create
      (Speaker.config ~global_export:(Filters.drop_protocol proto_a) ~asn:(asn 5)
         ~addr:(Ipv4.of_octets 10 0 0 5) ())
  in
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s (Speaker.neighbor ~relationship:Policy.To_provider (peer 6));
  let ia = base_ia () |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"x" (Value.Int 1) in
  match Speaker.receive s ~from:(peer 1) (Speaker.Announce ia) with
  | [ (_, Speaker.Announce out) ] ->
    check "stripped on egress only" true
      (Ia.find_path_descriptor ~proto:proto_a ~field:"x" out = None);
    (* the speaker's own view keeps the protocol (import untouched) *)
    ( match Speaker.best s (pfx "99.0.0.0/24") with
      | Some c ->
        check "import side intact" true
          (Ia.find_path_descriptor ~proto:proto_a ~field:"x" c.Speaker.candidate.Dm.ia
          <> None)
      | None -> Alcotest.fail "route expected" )
  | _ -> Alcotest.fail "one announcement expected"

(* ------------------------- Aggregation ------------------------- *)

module Agg = Dbgp_core.Aggregation

let sibling_ias () =
  let mk prefix cost bw =
    Ia.originate ~prefix:(pfx prefix) ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") ()
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"wiser-cost" (Value.Int cost)
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.eq_bgp ] ~field:"eqbgp-bw" (Value.Int bw)
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.bgpsec ] ~field:"bgpsec-attest"
         (Value.List [ Value.Bytes "sig" ])
  in
  (Ia.prepend_as (asn 2) (mk "10.0.0.0/25" 5 100),
   Ia.prepend_as (asn 3) (mk "10.0.0.128/25" 9 300))

let test_aggregation_siblings_only () =
  let a, b = sibling_ias () in
  check "siblings aggregate" true (Agg.aggregate a b <> None);
  check "same prefix rejected" true (Agg.aggregate a a = None);
  let far = { a with Ia.prefix = pfx "99.0.0.0/25" } in
  check "non-siblings rejected" true (Agg.aggregate far b = None)

let test_aggregation_semantics () =
  let a, b = sibling_ias () in
  match Agg.aggregate a b with
  | None -> Alcotest.fail "should aggregate"
  | Some agg ->
    check "covering prefix" true (Prefix.equal agg.Ia.prefix (pfx "10.0.0.0/24"));
    (* path vector became one AS_SET with all ASes *)
    ( match agg.Ia.path_vector with
      | [ Path_elem.As_set s ] ->
        check "all ASes in set" true
          (List.map Asn.to_int s = [ 1; 2; 3 ])
      | _ -> Alcotest.fail "expected a single AS_SET" );
    (* The paper's claim: BGPSec attestations cannot be aggregated and
       neither can Wiser's costs (no rule registered). *)
    check "attestations dropped" true
      (Ia.find_path_descriptor ~proto:Protocol_id.bgpsec ~field:"bgpsec-attest" agg = None);
    check "wiser cost dropped" true
      (Ia.find_path_descriptor ~proto:Protocol_id.wiser ~field:"wiser-cost" agg = None);
    (* Bottleneck bandwidth aggregates conservatively (min). *)
    check "bandwidth takes min" true
      (Ia.find_path_descriptor ~proto:Protocol_id.eq_bgp ~field:"eqbgp-bw" agg
      = Some (Value.Int 100))

let test_aggregation_fraction () =
  let a, _ = sibling_ias () in
  let f = Agg.aggregable_fraction a in
  (* five descriptors: origin (rule), next-hop (rule), wiser (no),
     eqbgp (rule), bgpsec (no) -> 3/5 *)
  check "fraction 0.6" true (abs_float (f -. 0.6) < 1e-9)

let test_aggregation_custom_rule () =
  let proto = Protocol_id.register "agg-test-proto" in
  Agg.register_rule ~proto ~field:"lat" Agg.Take_worst;
  check "registered" true (Agg.rule_for ~proto ~field:"lat" = Agg.Take_worst);
  check "default deny" true
    (Agg.rule_for ~proto ~field:"other" = Agg.Cannot_aggregate)

let qcheck =
  let open QCheck in
  let gen_value =
    Gen.sized_size (Gen.int_range 0 3)
    @@ Gen.fix (fun self n ->
           if n = 0 then
             Gen.oneof
               [ Gen.map (fun i -> Value.Int i) Gen.nat;
                 Gen.map (fun s -> Value.Str s) Gen.string_printable;
                 Gen.map (fun s -> Value.Bytes s) Gen.string ]
           else
             Gen.oneof
               [ Gen.map (fun l -> Value.List l) (Gen.list_size (Gen.int_range 0 4) (self (n - 1)));
                 Gen.map2 (fun a b -> Value.Pair (a, b)) (self (n - 1)) (self (n - 1)) ])
  in
  [ Test.make ~name:"value wire roundtrip" ~count:300 (make gen_value) (fun v ->
        let w = Dbgp_wire.Writer.create () in
        Value.encode w v;
        Value.equal v (Value.decode (Dbgp_wire.Reader.of_string (Dbgp_wire.Writer.contents w))));
    Test.make ~name:"ia codec roundtrip with random paths" ~count:200
      (list_of_size (Gen.int_range 0 8) (int_bound 100000))
      (fun path ->
        let ia =
          List.fold_left (fun ia n -> Ia.prepend_as (asn (n + 1)) ia) (base_ia ()) path
        in
        Ia.equal ia (Codec.decode (Codec.encode ia)));
    Test.make ~name:"aggregates are loop-free covering advertisements" ~count:100
      (pair (int_bound 0xFFFF) (int_bound 0xFFFF))
      (fun (n1, n2) ->
        let mk prefix o =
          Ia.originate ~prefix ~origin_asn:(asn (1 + o)) ~next_hop:(ip "10.0.0.1") ()
          |> Ia.prepend_as (asn (100 + o))
        in
        let parent = Prefix.make (Ipv4.of_int ((n1 lxor n2) lsl 12)) 19 in
        match Prefix.split parent with
        | None -> true
        | Some (lo, hi) -> (
          match Dbgp_core.Aggregation.aggregate (mk lo 0) (mk hi 1) with
          | None -> false
          | Some agg ->
            Prefix.equal agg.Ia.prefix parent
            && (not (Ia.has_loop agg))
            && Prefix.subsumes agg.Ia.prefix lo
            && Prefix.subsumes agg.Ia.prefix hi ));
    Test.make ~name:"set_path_descriptor keeps (proto, field) unique" ~count:200
      (list_of_size (Gen.int_range 1 8) (pair (int_bound 2) (int_bound 2)))
      (fun ops ->
        let protos = [| Protocol_id.bgp; proto_a; proto_b |] in
        let ia =
          List.fold_left
            (fun ia (p, q) ->
              Ia.set_path_descriptor
                ~owners:(List.sort_uniq Protocol_id.compare [ protos.(p); protos.(q) ])
                ~field:"f" (Value.Int (p + q)) ia)
            (base_ia ()) ops
        in
        (* every proto resolves "f" to at most one value, and no two
           same-field descriptors share an owner *)
        List.for_all
          (fun (d1 : Ia.path_descriptor) ->
            List.for_all
              (fun (d2 : Ia.path_descriptor) ->
                d1 == d2 || d1.Ia.field <> "f" || d2.Ia.field <> "f"
                || List.for_all
                     (fun p -> not (List.exists (Protocol_id.equal p) d2.Ia.owners))
                     d1.Ia.owners)
              ia.Ia.path_descriptors)
          ia.Ia.path_descriptors);
    Test.make ~name:"factory passthrough preserves protocol set" ~count:100
      (int_bound 1000)
      (fun n ->
        let ia =
          base_ia ()
          |> Ia.set_path_descriptor ~owners:[ proto_a ] ~field:"f" (Value.Int n)
        in
        let out =
          Factory.build ~passthrough:true
            ~supported:(Protocol_id.Set.singleton Protocol_id.bgp)
            ~me:(asn 42) ~my_addr:(ip "10.9.9.9") ~contributions:[] ia
        in
        Protocol_id.Set.subset (Ia.protocols ia) (Ia.protocols out)) ]

let () =
  Alcotest.run "core"
    [ ("value",
       [ Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
         Alcotest.test_case "accessors" `Quick test_value_accessors ]);
      ("ia",
       [ Alcotest.test_case "originate" `Quick test_ia_originate;
         Alcotest.test_case "prepend/loop" `Quick test_ia_prepend_loop;
         Alcotest.test_case "shared descriptors" `Quick test_ia_descriptors_shared;
         Alcotest.test_case "remove protocol" `Quick test_ia_remove_protocol;
         Alcotest.test_case "island abstraction" `Quick test_ia_island_abstraction;
         Alcotest.test_case "membership" `Quick test_ia_membership;
         Alcotest.test_case "island descriptors" `Quick test_ia_island_descriptors ]);
      ("codec",
       [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
         Alcotest.test_case "size/breakdown" `Quick test_codec_size_breakdown;
         Alcotest.test_case "sharing smaller" `Quick test_codec_sharing_smaller;
         Alcotest.test_case "unknown protocols" `Quick test_codec_unknown_protocol_passes;
         Alcotest.test_case "batch roundtrip" `Quick test_codec_batch_roundtrip;
         Alcotest.test_case "batch salvage" `Quick test_codec_batch_salvage;
         Alcotest.test_case "withdraw batch" `Quick test_codec_withdraw_batch ]);
      ("filters",
       [ Alcotest.test_case "loops" `Quick test_filters_loops;
         Alcotest.test_case "drop/keep" `Quick test_filters_drop_keep;
         Alcotest.test_case "compose" `Quick test_filters_compose;
         Alcotest.test_case "max size" `Quick test_filters_max_size;
         Alcotest.test_case "when" `Quick test_filters_when ]);
      ("decision-module",
       [ Alcotest.test_case "bgp select" `Quick test_bgp_module_select ]);
      ("attr-table", [ Alcotest.test_case "refcount lifecycle" `Quick test_attr_table_lifecycle ]);
      ("adj-rib-in", [ Alcotest.test_case "set/candidates/drop" `Quick test_ia_db ]);
      ("factory",
       [ Alcotest.test_case "passthrough" `Quick test_factory_passthrough;
         Alcotest.test_case "contribution order" `Quick test_factory_contributions_order ]);
      ("shared-fields",
       [ Alcotest.test_case "next-hop owners" `Quick test_ia_next_hop_owner_preserved;
         Alcotest.test_case "global export filter" `Quick test_speaker_global_export_filter ]);
      ("aggregation",
       [ Alcotest.test_case "siblings only" `Quick test_aggregation_siblings_only;
         Alcotest.test_case "semantics" `Quick test_aggregation_semantics;
         Alcotest.test_case "aggregable fraction" `Quick test_aggregation_fraction;
         Alcotest.test_case "custom rules" `Quick test_aggregation_custom_rule ]);
      ("speaker",
       [ Alcotest.test_case "originate+export" `Quick test_speaker_originate_and_export;
         Alcotest.test_case "receive+prepend" `Quick test_speaker_receive_prepend;
         Alcotest.test_case "valley-free export" `Quick test_speaker_valley_free;
         Alcotest.test_case "loop rejected" `Quick test_speaker_loop_rejected;
         Alcotest.test_case "own-as path" `Quick test_speaker_own_as_rejected;
         Alcotest.test_case "withdraw" `Quick test_speaker_withdraw;
         Alcotest.test_case "better path switch" `Quick test_speaker_better_path_switch;
         Alcotest.test_case "peer down" `Quick test_speaker_peer_down;
         Alcotest.test_case "legacy downgrade" `Quick test_speaker_legacy_downgrade;
         Alcotest.test_case "island egress" `Quick test_speaker_island_egress;
         Alcotest.test_case "active protocol ranges" `Quick test_speaker_active_protocol;
         Alcotest.test_case "global import filter" `Quick test_speaker_global_import_filter ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
