(* Differential equivalence against the committed golden transcripts.

   The golden fingerprints in [golden_differential.txt] were recorded
   against the pre-pipeline speaker; the staged-RIB speaker must
   reproduce them byte for byte — identical ordered message transcript,
   identical final state — on every scenario, including the seeded
   chaos run.  A batched (MRAI > 0) chaos run additionally has to come
   out healthy: receive-side coalescing must not cost safety. *)

module Differential = Dbgp_eval.Differential
module Chaos = Dbgp_eval.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let goldens () =
  let ic = open_in "golden_differential.txt" in
  let rec go acc =
    match input_line ic with
    | line ->
      (match Differential.of_line line with
      | Some d -> go (d :: acc)
      | None -> Alcotest.fail ("malformed golden line: " ^ line))
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_goldens_match () =
  let golden = goldens () in
  check_int "one golden per scenario"
    (List.length Differential.scenarios)
    (List.length golden);
  let fresh = Differential.run_all () in
  List.iter2
    (fun g f ->
      check_str "scenario order" g.Differential.scenario
        f.Differential.scenario;
      check (g.Differential.scenario ^ ": golden fingerprint") true
        (Differential.equal g f))
    golden fresh

let test_digest_line_roundtrip () =
  let d = Differential.run "relay-line" in
  check "to_line/of_line roundtrip" true
    (Differential.of_line (Differential.to_line d) = Some d);
  check "of_line rejects garbage" true
    (Differential.of_line "not a golden line" = None)

let test_seed_sensitivity () =
  (* A different seed must change the fingerprints — otherwise the
     digests are not actually covering the workload. *)
  let a = Differential.run ~seed:42 "hub-policy" in
  let b = Differential.run ~seed:43 "hub-policy" in
  check "digests depend on the workload" false (Differential.equal a b)

let test_batched_chaos_healthy () =
  let report = Chaos.run { Chaos.default with Chaos.mrai = 2.0 } in
  check "batched chaos run is healthy" true (Chaos.healthy report);
  check "invariants hold" true
    (Dbgp_eval.Invariants.ok report.Chaos.invariants)

let () =
  Alcotest.run "differential"
    [ ( "golden",
        [ Alcotest.test_case "all scenarios match" `Quick test_goldens_match;
          Alcotest.test_case "line roundtrip" `Quick
            test_digest_line_roundtrip;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity ]
      );
      ( "batched-chaos",
        [ Alcotest.test_case "mrai 2.0 healthy" `Quick
            test_batched_chaos_healthy ] ) ]
