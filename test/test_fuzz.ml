(* Adversarial-input resilience: the RFC 7606 verdict ladder in the codec
   (decode_robust), the wire-level speaker entry point (receive_wire), the
   seeded fuzzer itself, and the post-chaos safety-invariant checker. *)

open Dbgp_types
module Codec = Dbgp_core.Codec
module Errors = Dbgp_core.Errors
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Filters = Dbgp_core.Filters
module Network = Dbgp_netsim.Network
module Fault_model = Dbgp_netsim.Fault_model
module E = Dbgp_eval
module Metrics = Dbgp_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let prefix = Prefix.of_string "99.0.0.0/24"

let rich_ia () =
  Ia.originate ~prefix ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") ()
  |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"wiser-cost"
       (Value.Int 7)
  |> Ia.prepend_as (asn 7)

let counter_of sp name =
  match Metrics.find_counter (Speaker.metrics sp) name with
  | Some c -> Metrics.count c
  | None -> 0

(* ------------------------- decode_robust ------------------------- *)

let test_robust_roundtrip () =
  let ia = rich_ia () in
  match Codec.decode_robust (Codec.encode ia) with
  | Ok (ia', []) -> check "pristine bytes decode back equal" true (Ia.equal ia ia')
  | Ok (_, _ :: _) -> Alcotest.fail "pristine bytes produced discards"
  | Error _ -> Alcotest.fail "pristine bytes rejected"

let test_robust_garbage_is_session_reset () =
  List.iter
    (fun s ->
      match Codec.decode_robust s with
      | Error e ->
        check "class is session_reset" true (e.Errors.cls = Errors.Session_reset);
        check "stage is framing" true (e.Errors.stage = Errors.Framing)
      | Ok _ -> Alcotest.fail "garbage accepted")
    [ ""; "\x01"; "\xff\xff\xff\xff\xff\xff\xff\xff" ]

let test_robust_trailing_bytes_withdraw () =
  let wire = Codec.encode (rich_ia ()) ^ "\xde\xad\xbe\xef" in
  match Codec.decode_robust wire with
  | Error e ->
    check "class is treat_as_withdraw" true
      (e.Errors.cls = Errors.Treat_as_withdraw)
  | Ok _ -> Alcotest.fail "trailing junk accepted"

(* Exhaustive single-byte-flip sweep: every flip of every byte must land
   on the verdict ladder — accept, salvage with discards, withdraw, or
   session error — and never raise.  The rich IA carries a framed wiser
   descriptor, so at least one interior flip must be individually
   discarded while the route survives. *)
let test_robust_single_flip_sweep () =
  let wire = Codec.encode (rich_ia ()) in
  let outcomes = ref [] in
  String.iteri
    (fun i _ ->
      List.iter
        (fun mask ->
          let b = Bytes.of_string wire in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
          let verdict =
            match Codec.decode_robust (Bytes.to_string b) with
            | Ok (_, []) -> `Clean
            | Ok (_, _ :: _) -> `Salvaged
            | Error e -> `Err e.Errors.cls
            | exception e ->
              Alcotest.failf "flip at byte %d escaped: %s" i
                (Printexc.to_string e)
          in
          outcomes := verdict :: !outcomes)
        [ 0x01; 0x80; 0xff ])
    wire;
  let has v = List.mem v !outcomes in
  check "some flips salvaged around a bad descriptor" true (has `Salvaged);
  check "some flips treat-as-withdraw" true (has (`Err Errors.Treat_as_withdraw))

(* ------------------------- receive_wire ------------------------- *)

let make_speaker () =
  let sp =
    Speaker.create (Speaker.config ~asn:(asn 2) ~addr:(ip "10.0.0.2") ())
  in
  let from = Peer.make ~asn:(asn 1) ~addr:(ip "10.0.0.1") in
  Speaker.add_neighbor sp
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer from);
  (sp, from)

let test_receive_wire_accept () =
  let sp, from = make_speaker () in
  let outcome, _ = Speaker.receive_wire sp ~from (Codec.encode (rich_ia ())) in
  check "accepted clean" true (outcome = Speaker.Rx_accepted 0);
  check "route installed" true (Speaker.best sp prefix <> None);
  check "pass-through survived the wire" true
    (match Speaker.best sp prefix with
    | Some { Speaker.outgoing; _ } ->
      Ia.find_path_descriptor ~proto:Protocol_id.wiser ~field:"wiser-cost"
        outgoing
      = Some (Value.Int 7)
    | None -> false)

let test_receive_wire_filtered () =
  let sp, from = make_speaker () in
  (* A repeated AS on the path vector: decodes fine, loop-rejected. *)
  let looped = Ia.prepend_as (asn 7) (rich_ia ()) in
  let outcome, out = Speaker.receive_wire sp ~from (Codec.encode looped) in
  check "filtered by import policy" true (outcome = Speaker.Rx_filtered);
  check "nothing advertised" true (out = []);
  check "rejection counted" true (counter_of sp "import.rejected" > 0)

let test_receive_wire_missing_next_hop () =
  let sp, from = make_speaker () in
  (* Announce first so the treat-as-withdraw is observable. *)
  ignore (Speaker.receive_wire sp ~from (Codec.encode (rich_ia ())));
  check "route present" true (Speaker.best sp prefix <> None);
  (* Strip every BGP descriptor: structurally valid, semantically not. *)
  let no_nh = Ia.remove_protocol Protocol_id.bgp (rich_ia ()) in
  check "test IA really lacks a next hop" true (Ia.next_hop no_nh = None);
  let outcome, _ = Speaker.receive_wire sp ~from (Codec.encode no_nh) in
  check "semantic failure is treat-as-withdraw" true
    (outcome = Speaker.Rx_withdrawn);
  check "previous route withdrawn" true (Speaker.best sp prefix = None);
  check_int "verdict counted" 1 (counter_of sp "errors.treat_as_withdraw")

let test_receive_wire_session_error () =
  let sp, from = make_speaker () in
  (* 0xff reads as prefix length 255: unrecoverable framing damage.  (A
     single 0x00 would decode as a valid 0.0.0.0/0 prefix and land on
     treat-as-withdraw instead.) *)
  let outcome, out = Speaker.receive_wire sp ~from "\xff" in
  check "framing damage is a session error" true
    (outcome = Speaker.Rx_session_error);
  check "nothing advertised" true (out = []);
  check_int "verdict counted" 1 (counter_of sp "errors.session_reset")

let test_receive_never_raises () =
  let sp =
    Speaker.create
      (Speaker.config ~asn:(asn 2) ~addr:(ip "10.0.0.2")
         ~global_import:(fun _ -> failwith "hostile filter") ())
  in
  let from = Peer.make ~asn:(asn 1) ~addr:(ip "10.0.0.1") in
  Speaker.add_neighbor sp
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer from);
  let out = Speaker.receive sp ~from (Speaker.Announce (rich_ia ())) in
  check "exception absorbed, message dropped" true (out = []);
  check_int "counted as internal error" 1 (counter_of sp "errors.internal")

let test_receive_duplicate_absorbed () =
  let sp, from = make_speaker () in
  let ia = rich_ia () in
  ignore (Speaker.receive sp ~from (Speaker.Announce ia));
  let runs = counter_of sp "decision.runs" in
  let out = Speaker.receive sp ~from (Speaker.Announce ia) in
  check "duplicate produces no messages" true (out = []);
  check_int "decision not re-run" runs (counter_of sp "decision.runs");
  check_int "duplicate counted" 1 (counter_of sp "updates.duplicate")

(* ------------------------- the fuzzer ------------------------- *)

let test_fuzz_deterministic () =
  let cfg = { E.Fuzz.seed = 7; cases = 500 } in
  let r1 = E.Fuzz.run cfg in
  let r2 = E.Fuzz.run cfg in
  check "same seed, identical outcome histogram" true
    (E.Fuzz.deterministic_fields r1 = E.Fuzz.deterministic_fields r2);
  let r3 = E.Fuzz.run { cfg with E.Fuzz.seed = 8 } in
  check "different seed, different histogram" true
    (E.Fuzz.deterministic_fields r1 <> E.Fuzz.deterministic_fields r3)

(* The acceptance run: the full default corpus (10k cases, seed 42) with
   zero escaped exceptions and zero codec roundtrip failures. *)
let test_fuzz_default_corpus () =
  let r = E.Fuzz.run E.Fuzz.default in
  check_int "10k cases" 10_000 r.E.Fuzz.config.E.Fuzz.cases;
  check_int "zero escaped exceptions" 0 r.E.Fuzz.escaped;
  check_int "zero roundtrip failures" 0 r.E.Fuzz.roundtrip_failures;
  check_int "every case classified on the ladder"
    r.E.Fuzz.config.E.Fuzz.cases
    (r.E.Fuzz.accepted + r.E.Fuzz.accepted_with_discards + r.E.Fuzz.filtered
   + r.E.Fuzz.withdrawn + r.E.Fuzz.session_error);
  check "mutations bite: not everything accepted clean" true
    (r.E.Fuzz.withdrawn > 0 && r.E.Fuzz.session_error > 0);
  check "salvage path exercised" true (r.E.Fuzz.discarded_descriptors > 0);
  (* The batched-frame leg: every fourth case, zero escapes (already
     asserted above — batch escapes land in the same counter), and the
     batch salvage ladder exercised end to end. *)
  check_int "batch leg ran on every fourth case" 2_500 r.E.Fuzz.batch_cases;
  check "batch frames salvaged" true (r.E.Fuzz.batch_ok > 0);
  check "batch treat-as-withdraw hit" true (r.E.Fuzz.batch_treat_withdraw > 0);
  check "batch framing loss hit" true (r.E.Fuzz.batch_session_reset > 0)

(* ------------------------- safety invariants ------------------------- *)

(* An address inside the announced prefix: what the FIB walk resolves. *)
let dest = ip "99.0.0.1"

let chain () =
  let net = Network.create () in
  List.iter (fun n -> ignore (E.Harness.add_as net n)) [ 1; 2; 3 ];
  Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:Dbgp_bgp.Policy.To_customer ();
  Network.link net ~a:(asn 2) ~b:(asn 3) ~b_is:Dbgp_bgp.Policy.To_customer ();
  net

let origin_ia () =
  Ia.originate ~prefix ~origin_asn:(asn 1)
    ~next_hop:(Network.speaker_addr (asn 1)) ()
  |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"wiser-cost"
       (Value.Int 7)

let test_invariants_clean_network () =
  let net = chain () in
  Network.originate net (asn 1) (origin_ia ());
  ignore (Network.run net);
  let r =
    E.Invariants.check
      ~expect_descriptor:(Protocol_id.wiser, "wiser-cost", Value.Int 7)
      ~prefix ~dest net
  in
  check "clean converged network passes" true (E.Invariants.ok r);
  check_int "all speakers examined" 3 r.E.Invariants.speakers;
  check_int "origin + transit + stub all hold the route" 3
    r.E.Invariants.with_route

let test_invariants_detect_passthrough_mutation () =
  let net = chain () in
  Network.originate net (asn 1) (origin_ia ());
  ignore (Network.run net);
  let r =
    E.Invariants.check
      ~expect_descriptor:(Protocol_id.wiser, "wiser-cost", Value.Int 99)
      ~prefix ~dest net
  in
  check "wrong expected value is flagged" false (E.Invariants.ok r);
  check "flagged as pass-through mutation" true
    (List.exists
       (function E.Invariants.Passthrough_mutated _ -> true | _ -> false)
       r.E.Invariants.violations)

let test_invariants_detect_down_link_route () =
  let net = chain () in
  Network.set_graceful_restart net (Some 1000.);
  Network.originate net (asn 1) (origin_ia ());
  ignore (Network.run net);
  (* Cut the link inside a wide restart window: AS 2's stale best route
     still points across the down link, which is exactly the unsafe state
     the checker must flag (alongside the stale retention itself). *)
  Network.fail_link net (asn 1) (asn 2);
  let r = E.Invariants.check ~prefix ~dest net in
  check "route via down link detected" true
    (List.exists
       (function
         | E.Invariants.Route_via_down_link (2, 1) -> true
         | _ -> false)
       r.E.Invariants.violations);
  check "stale retention reported too" true
    (List.exists
       (function E.Invariants.Stale_leak _ -> true | _ -> false)
       r.E.Invariants.violations)

let test_invariants_under_total_corruption () =
  (* Corrupt every announcement on the wire: liveness may suffer, safety
     must not, and every injection must be accounted. *)
  let net = chain () in
  let f = Fault_model.create ~seed:11 () in
  Fault_model.set_corruption f 1.0;
  Network.set_fault_model net f;
  Network.originate net (asn 1) (origin_ia ());
  ignore (Network.run net);
  let injected =
    Metrics.count (Metrics.counter (Network.metrics net) "net.corruption.injected")
  in
  check "corruption actually injected" true (injected > 0);
  check "all injections accounted by the model" true
    (Fault_model.corrupted f >= injected);
  check "verdicts or survivals recorded" true
    (let survived =
       Metrics.count
         (Metrics.counter (Network.metrics net) "net.corruption.survived")
     in
     let verdicts =
       List.fold_left
         (fun a c -> a + Network.counter_total net (Errors.counter_name c))
         0 Errors.all_classes
     in
     survived + verdicts > 0);
  let r = E.Invariants.check ~prefix ~dest net in
  check "safety invariants hold under total corruption" true
    (E.Invariants.ok r)

let () =
  Alcotest.run "fuzz"
    [ ("decode-robust",
       [ Alcotest.test_case "pristine roundtrip" `Quick test_robust_roundtrip;
         Alcotest.test_case "garbage is session reset" `Quick
           test_robust_garbage_is_session_reset;
         Alcotest.test_case "trailing bytes withdraw" `Quick
           test_robust_trailing_bytes_withdraw;
         Alcotest.test_case "single-flip sweep" `Quick
           test_robust_single_flip_sweep ]);
      ("receive-wire",
       [ Alcotest.test_case "clean accept" `Quick test_receive_wire_accept;
         Alcotest.test_case "loop filtered" `Quick test_receive_wire_filtered;
         Alcotest.test_case "missing next hop withdraws" `Quick
           test_receive_wire_missing_next_hop;
         Alcotest.test_case "framing damage" `Quick
           test_receive_wire_session_error;
         Alcotest.test_case "pipeline exception absorbed" `Quick
           test_receive_never_raises;
         Alcotest.test_case "duplicate absorbed" `Quick
           test_receive_duplicate_absorbed ]);
      ("fuzzer",
       [ Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
         Alcotest.test_case "default corpus: no escapes" `Slow
           test_fuzz_default_corpus ]);
      ("invariants",
       [ Alcotest.test_case "clean network passes" `Quick
           test_invariants_clean_network;
         Alcotest.test_case "pass-through mutation detected" `Quick
           test_invariants_detect_passthrough_mutation;
         Alcotest.test_case "route via down link detected" `Quick
           test_invariants_detect_down_link_route;
         Alcotest.test_case "safety under total corruption" `Quick
           test_invariants_under_total_corruption ]) ]
