(* Cross-module integration: full speakers on the simulator, mixed
   protocols, pass-through ablation, failure recovery, and control-plane
   to data-plane wiring. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module
module Network = Dbgp_netsim.Network
module P = Dbgp_bgp.Policy
module Wiser = Dbgp_protocols.Wiser
module Eqbgp = Dbgp_protocols.Eqbgp
module Bgpsec = Dbgp_protocols.Bgpsec_like
module Portal_io = Dbgp_protocols.Portal_io
open Dbgp_dataplane

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let pfx = Prefix.of_string

let add net ?island ?passthrough n =
  let a = asn n in
  let s =
    Speaker.create
      (Speaker.config ?island ?passthrough ~asn:a ~addr:(Network.speaker_addr a) ())
  in
  Network.add_speaker net s;
  s

let cust net a b =
  Network.link net ~a:(asn a) ~b:(asn b) ~b_is:P.To_provider ()

let origin_ia n prefix =
  Ia.originate ~prefix:(pfx prefix) ~origin_asn:(asn n)
    ~next_hop:(Network.speaker_addr (asn n)) ()

(* Multiple protocols coexisting in one IA across a shared path:
   Wiser and EQ-BGP both attach control information; a gulf AS passes
   both through; the receiver extracts both. *)
let test_two_fixes_coexist () =
  let net = Network.create () in
  let isl_w = Island_id.named "W" in
  let d = add net ~island:isl_w 1 in
  let mid = add net ~island:isl_w 2 in
  let _gulf = add net 3 in
  let recv = add net 4 in
  let wiser =
    Wiser.create
      { Wiser.my_island = isl_w; internal_cost = 33;
        portal = Ipv4.of_string "172.16.0.1"; io = Portal_io.null }
  in
  Speaker.add_module mid (Wiser.decision_module wiser);
  Speaker.add_module mid (Eqbgp.decision_module { Eqbgp.ingress_bandwidth = 77 });
  ignore d;
  Speaker.set_active mid (pfx "99.0.0.0/24") Wiser.protocol;
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  match Speaker.best recv (pfx "99.0.0.0/24") with
  | None -> Alcotest.fail "route must reach AS 4"
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dm.ia in
    check "wiser cost crossed gulf" true (Wiser.cost_of ia = Some 33);
    check "eqbgp bandwidth crossed gulf" true (Eqbgp.bandwidth_of ia = Some 77);
    check_int "both protocols + bgp" 3 (Protocol_id.Set.cardinal (Ia.protocols ia))

(* The pass-through ablation: identical topology, gulf without
   pass-through loses both descriptors. *)
let test_passthrough_ablation () =
  let net = Network.create () in
  let isl_w = Island_id.named "W" in
  let _d = add net ~island:isl_w 1 in
  let mid = add net ~island:isl_w 2 in
  let _gulf = add net ~passthrough:false 3 in
  let recv = add net 4 in
  let wiser =
    Wiser.create
      { Wiser.my_island = isl_w; internal_cost = 33;
        portal = Ipv4.of_string "172.16.0.1"; io = Portal_io.null }
  in
  Speaker.add_module mid (Wiser.decision_module wiser);
  Speaker.set_active mid (pfx "99.0.0.0/24") Wiser.protocol;
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  match Speaker.best recv (pfx "99.0.0.0/24") with
  | None -> Alcotest.fail "plain BGP still delivers connectivity"
  | Some chosen ->
    check "cost stripped at gulf" true
      (Wiser.cost_of chosen.Speaker.candidate.Dm.ia = None)

(* BGPSec across a clean chain: receiver with the PKI verifies a chain
   built hop-by-hop by speakers' contribute; a spoofed injection without
   attestations ranks below the attested route. *)
let test_bgpsec_end_to_end () =
  let keys = [ (1, "s1"); (2, "s2"); (3, "s3"); (4, "s4") ] in
  let pki a = List.assoc_opt (Asn.to_int a) keys in
  let net = Network.create () in
  let speakers =
    List.map
      (fun n ->
        let s = add net n in
        Speaker.add_module s
          (Bgpsec.decision_module
             { Bgpsec.me = asn n; secret = List.assoc n keys; pki; require_full = false; authorized = None });
        Speaker.set_active s (pfx "99.0.0.0/24") Bgpsec.protocol;
        s)
      [ 1; 2; 3; 4 ]
  in
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  Network.originate net (asn 1)
    (Bgpsec.sign_origin ~secret:"s1" ~me:(asn 1) (origin_ia 1 "99.0.0.0/24"));
  ignore (Network.run net);
  let recv = List.nth speakers 3 in
  match Speaker.best recv (pfx "99.0.0.0/24") with
  | None -> Alcotest.fail "attested route should arrive"
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dm.ia in
    check "chain verifies" true (Bgpsec.verify ~pki ia = Bgpsec.Full);
    check_int "three attestations (origin + 2 transit)" 3
      (List.length (Bgpsec.attestations ia))

(* Drive the data plane from converged control-plane state: build FIBs
   out of speakers' best routes and forward a packet along them. *)
let test_control_to_data_plane () =
  let net = Network.create () in
  List.iter (fun n -> ignore (add net n)) [ 1; 2; 3; 4 ];
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  let engine = Engine.create () in
  let addr_to_asn = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace addr_to_asn
        (Ipv4.to_int (Network.speaker_addr (asn n)))
        n)
    [ 1; 2; 3; 4 ];
  List.iter
    (fun n ->
      let s = Network.speaker net (asn n) in
      let f = Forwarder.create ~me:(asn n) () in
      List.iter
        (fun (prefix, (chosen : Speaker.chosen)) ->
          match chosen.Speaker.candidate.Dm.from_peer with
          | Some p ->
            let nh = Hashtbl.find addr_to_asn (Ipv4.to_int p.Dbgp_core.Peer.addr) in
            Forwarder.set_ip_route f prefix (Forwarder.To_as (asn nh))
          | None -> Forwarder.set_ip_route f prefix Forwarder.Local)
        (Speaker.best_routes s);
      Engine.add engine f)
    [ 1; 2; 3; 4 ];
  let pkt =
    Packet.make
      ~headers:
        [ Header.Ipv4_hdr
            { src = Network.speaker_addr (asn 4);
              dst = Ipv4.of_string "99.0.0.9" } ]
      ~payload:"end-to-end" ()
  in
  match Engine.route engine ~from:(asn 4) pkt with
  | Engine.Delivered { at; path } ->
    check "delivered at origin AS" true (Asn.equal at (asn 1));
    check "follows the AS path" true (List.map Asn.to_int path = [ 4; 3; 2; 1 ])
  | Engine.Dropped { reason; _ } -> Alcotest.fail ("dropped: " ^ reason)

(* Failure recovery with a protocol descriptor: after the primary link
   dies, the alternate path's IA still carries the descriptor. *)
let test_failure_keeps_descriptors () =
  let net = Network.create () in
  let isl = Island_id.named "W" in
  let orig = add net ~island:isl 1 in
  let _via2 = add net 2 in
  let _via3 = add net 3 in
  let recv = add net 4 in
  let wiser =
    Wiser.create
      { Wiser.my_island = isl; internal_cost = 5;
        portal = Ipv4.of_string "172.16.0.9"; io = Portal_io.null }
  in
  Speaker.add_module orig (Wiser.decision_module wiser);
  Speaker.set_active orig (pfx "99.0.0.0/24") Wiser.protocol;
  (* 1 is customer of 2 and 3; both are customers of 4. *)
  cust net 1 2;
  cust net 1 3;
  cust net 2 4;
  cust net 3 4;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  let path_via () =
    match Speaker.best recv (pfx "99.0.0.0/24") with
    | Some c -> Ia.asns_on_path c.Speaker.candidate.Dm.ia
    | None -> []
  in
  let first = path_via () in
  check "reachable" true (first <> []);
  let middle = List.hd first in
  Network.fail_link net middle (asn 4);
  ignore (Network.run net);
  let second = path_via () in
  check "rerouted" true (second <> [] && not (List.mem middle second));
  match Speaker.best recv (pfx "99.0.0.0/24") with
  | Some c ->
    (* The origin contributes cost only on re-advertised routes; after
       failover the alternate IA must still carry BGP info and remain
       loop-free. *)
    check "alternate IA intact" false (Ia.has_loop c.Speaker.candidate.Dm.ia)
  | None -> Alcotest.fail "alternate path lost"

(* Convergence cost accounting: messages and bytes grow with topology
   size; converged_at reflects link latency. *)
let test_convergence_accounting () =
  let run n_ases =
    let net = Network.create () in
    List.iter (fun n -> ignore (add net n)) (List.init n_ases (fun i -> i + 1));
    List.iter (fun i -> cust net i (i + 1)) (List.init (n_ases - 1) (fun i -> i + 1));
    Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
    Network.run net
  in
  let small = run 3 and large = run 8 in
  check "more ASes, more messages" true
    (large.Network.messages > small.Network.messages);
  check "more ASes, later convergence" true
    (large.Network.converged_at > small.Network.converged_at)

(* The origin must not accept its own prefix back (loop suppression at
   the origin). *)
let test_origin_loop_suppression () =
  let net = Network.create () in
  let s1 = add net 1 in
  let _s2 = add net 2 in
  cust net 1 2;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  match Speaker.best s1 (pfx "99.0.0.0/24") with
  | Some c ->
    check "origin keeps its local route" true
      (c.Speaker.candidate.Dm.from_peer = None)
  | None -> Alcotest.fail "origin lost its own route"

(* R-BGP end-to-end: backup paths disseminated through the network and
   usable after the primary's failure. *)
let test_rbgp_failover_network () =
  let net = Network.create () in
  List.iter (fun n -> ignore (add net n)) [ 1; 2; 3; 4; 5 ];
  (* 1 -> {2, 3} -> 4 -> 5: AS 4 sees two candidates and advertises the
     loser as a backup to AS 5. *)
  cust net 1 2;
  cust net 1 3;
  cust net 2 4;
  cust net 3 4;
  cust net 4 5;
  let rbgp = Dbgp_protocols.Rbgp.decision_module () in
  let s4 = Network.speaker net (asn 4) in
  Speaker.add_module s4 rbgp;
  Speaker.set_active s4 (pfx "99.0.0.0/24") Dbgp_protocols.Rbgp.protocol;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  let s5 = Network.speaker net (asn 5) in
  match Speaker.best s5 (pfx "99.0.0.0/24") with
  | None -> Alcotest.fail "AS 5 should have a route"
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dm.ia in
    ( match Dbgp_protocols.Rbgp.failover ia with
      | Some backup ->
        let primary_mid = List.nth (Ia.asns_on_path ia) 1 in
        check "backup avoids the primary's middle AS" false
          (List.exists (Path_elem.mentions_asn primary_mid) backup)
      | None -> Alcotest.fail "backup should have been disseminated" )

(* HLP island in the middle of a chain accumulates interior link-state
   cost into the advertised IA. *)
let test_hlp_over_network () =
  let net = Network.create () in
  let isl = Island_id.named "H" in
  let _a = add net 1 in
  let h = add net ~island:isl 2 in
  let _b = add net 3 in
  let db = Dbgp_topology.Link_state.create () in
  List.iter
    (fun l -> ignore (Dbgp_topology.Link_state.install db l))
    [ Dbgp_topology.Link_state.lsa ~router:"in" ~seq:1 [ ("mid", 2) ];
      Dbgp_topology.Link_state.lsa ~router:"mid" ~seq:1 [ ("in", 2); ("out", 3) ];
      Dbgp_topology.Link_state.lsa ~router:"out" ~seq:1 [ ("mid", 3) ] ];
  Speaker.add_module h
    (Dbgp_protocols.Hlp_like.decision_module
       { Dbgp_protocols.Hlp_like.my_island = isl; lsdb = db; ingress = "in";
         egress = "out"; peering_cost = 1 });
  Speaker.set_active h (pfx "99.0.0.0/24") Dbgp_protocols.Hlp_like.protocol;
  cust net 1 2;
  cust net 2 3;
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  match Speaker.best (Network.speaker net (asn 3)) (pfx "99.0.0.0/24") with
  | None -> Alcotest.fail "route must cross the HLP island"
  | Some chosen ->
    check "interior cost 5 + peering 1" true
      (Dbgp_protocols.Hlp_like.cost_of chosen.Speaker.candidate.Dm.ia = Some 6)

(* Section 3: D-BGP works for ASes with distributed control (one speaker
   per border router/AS) and centralized control (one speaker for the
   whole island).  An external observer must see equivalent IAs. *)
let test_centralized_equals_distributed () =
  let isl = Island_id.named "C" in
  let observe build =
    let net = Network.create () in
    build net;
    ignore (Network.run net);
    match Speaker.best (Network.speaker net (asn 9)) (pfx "99.0.0.0/24") with
    | Some chosen -> Some chosen.Speaker.candidate.Dm.ia
    | None -> None
  in
  let mk net ?(members = [ asn 2 ]) n =
    let s =
      Speaker.create
        (Speaker.config ~island:isl ~island_members:members
           ~hide_island_interior:true ~asn:(asn n)
           ~addr:(Network.speaker_addr (asn n)) ())
    in
    Network.add_speaker net s;
    s
  in
  (* Distributed: ASes 2 and 3 are separate island-member speakers. *)
  let distributed net =
    ignore (add net 1);
    ignore (mk net ~members:[ asn 2; asn 3 ] 2);
    ignore (mk net ~members:[ asn 2; asn 3 ] 3);
    ignore (add net 9);
    cust net 1 2;
    cust net 2 3;
    cust net 3 9;
    Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24")
  in
  (* Centralized: one speaker (AS 2) represents the island. *)
  let centralized net =
    ignore (add net 1);
    ignore (mk net ~members:[ asn 2; asn 3 ] 2);
    ignore (add net 9);
    cust net 1 2;
    cust net 2 9;
    Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24")
  in
  match (observe distributed, observe centralized) with
  | Some d, Some c ->
    check "same islands on path" true
      (List.map Island_id.to_string (Ia.islands_on_path d)
      = List.map Island_id.to_string (Ia.islands_on_path c));
    (* The island interior is abstracted in both cases: the external
       observer sees island ID + origin regardless of how many speakers
       the island runs. *)
    check "island interior hidden (distributed)" true
      (not (List.mem (asn 3) (Ia.asns_on_path d)));
    check_int "identical abstracted path length" (Ia.path_length c) (Ia.path_length d);
    check "same protocol set" true
      (Protocol_id.Set.equal (Ia.protocols d) (Ia.protocols c))
  | _ -> Alcotest.fail "both deployments must deliver the route"

(* ------------------------------------------------------------------ *)
(* Randomized whole-network invariants                                  *)
(* ------------------------------------------------------------------ *)

(* Build a random connected customer/provider topology, originate a few
   prefixes from random ASes, optionally fail random links, and check
   global invariants over every speaker's state. *)
let random_network_invariants seed =
  let rng = Dbgp_types.Prng.create seed in
  let n = 8 + Dbgp_types.Prng.int rng 10 in
  let g =
    Dbgp_topology.Brite.generate rng
      { Dbgp_topology.Brite.default with Dbgp_topology.Brite.n }
  in
  let net = Network.create () in
  for i = 1 to n do
    ignore (add net i)
  done;
  Dbgp_topology.As_graph.fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Dbgp_topology.As_graph.Customer_of_me -> P.To_customer
        | Dbgp_topology.As_graph.Provider_of_me -> P.To_provider
        | Dbgp_topology.As_graph.Peer_of_me -> P.To_peer
      in
      Network.link net ~a:(asn (a + 1)) ~b:(asn (b + 1)) ~b_is:rel ())
    g ();
  let origins =
    List.init 3 (fun i -> (1 + Dbgp_types.Prng.int rng n, 30 + i))
  in
  List.iter
    (fun (o, octet) ->
      Network.originate net (asn o)
        (origin_ia o (Printf.sprintf "99.0.%d.0/24" octet)))
    origins;
  ignore (Network.run net);
  (* random link failure *)
  ( if Dbgp_types.Prng.bool rng then
      let a = Dbgp_types.Prng.int rng n in
      match Dbgp_topology.As_graph.neighbors g a with
      | [] -> ()
      | nbrs ->
        let b, _ = List.nth nbrs (Dbgp_types.Prng.int rng (List.length nbrs)) in
        Network.fail_link net (asn (a + 1)) (asn (b + 1)) );
  ignore (Network.run net);
  (* Invariants: every selected route is loop-free and starts with the
     advertising neighbor; the adjacent-rib-out of every speaker never
     contains the receiving neighbor's own ASN. *)
  List.for_all
    (fun v ->
      let sp = Network.speaker net (asn v) in
      List.for_all
        (fun (_, (chosen : Speaker.chosen)) ->
          let ia = chosen.Speaker.candidate.Dm.ia in
          (not (Ia.has_loop ia))
          && ( match chosen.Speaker.candidate.Dm.from_peer with
               | None ->
                 (* locally originated: the only AS on the path is me *)
                 Ia.asns_on_path ia = [ asn v ]
               | Some p -> (
                 (not (List.mem (asn v) (Ia.asns_on_path ia)))
                 &&
                 match Ia.asns_on_path ia with
                 | first :: _ -> Asn.equal first p.Dbgp_core.Peer.asn
                 | [] -> false ) ))
        (Speaker.best_routes sp)
      && List.for_all
           (fun (nbr : Speaker.neighbor) ->
             List.for_all
               (fun (_, out_ia) ->
                 not
                   (List.mem nbr.Speaker.peer.Dbgp_core.Peer.asn
                      (Ia.asns_on_path out_ia)))
               (Speaker.adj_out sp nbr.Speaker.peer))
           (Speaker.neighbors sp))
    (List.init n (fun i -> i + 1))

let qcheck_invariants =
  [ QCheck.Test.make ~name:"random networks keep global invariants" ~count:25
      (QCheck.int_bound 10_000) random_network_invariants ]

let () =
  Alcotest.run "integration"
    [ ("multi-protocol",
       [ Alcotest.test_case "two fixes coexist" `Quick test_two_fixes_coexist;
         Alcotest.test_case "pass-through ablation" `Quick test_passthrough_ablation;
         Alcotest.test_case "bgpsec end-to-end" `Quick test_bgpsec_end_to_end ]);
      ("planes",
       [ Alcotest.test_case "control to data plane" `Quick test_control_to_data_plane ]);
      ("dynamics",
       [ Alcotest.test_case "failure keeps descriptors" `Quick test_failure_keeps_descriptors;
         Alcotest.test_case "convergence accounting" `Quick test_convergence_accounting;
         Alcotest.test_case "origin loop suppression" `Quick test_origin_loop_suppression ]);
      ("extension-protocols",
       [ Alcotest.test_case "rbgp failover" `Quick test_rbgp_failover_network;
         Alcotest.test_case "hlp over network" `Quick test_hlp_over_network ]);
      ("control-models",
       [ Alcotest.test_case "centralized = distributed" `Quick
           test_centralized_equals_distributed ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_invariants) ]
