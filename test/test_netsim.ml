open Dbgp_types
module Eq = Dbgp_netsim.Event_queue
module Lookup = Dbgp_netsim.Lookup_service
module Network = Dbgp_netsim.Network
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module P = Dbgp_bgp.Policy
module Metrics = Dbgp_obs.Metrics

let net_counter net name = Metrics.count (Metrics.counter (Network.metrics net) name)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string

(* ------------------------- event queue ------------------------- *)

let test_eq_ordering () =
  let q = Eq.create () in
  let log = ref [] in
  Eq.schedule q ~delay:3. (fun () -> log := "c" :: !log);
  Eq.schedule q ~delay:1. (fun () -> log := "a" :: !log);
  Eq.schedule q ~delay:2. (fun () -> log := "b" :: !log);
  check_int "three events" 3 (Eq.run q);
  check "time order" true (List.rev !log = [ "a"; "b"; "c" ]);
  check "clock advanced" true (Eq.now q = 3.)

let test_eq_fifo_at_same_time () =
  let q = Eq.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Eq.schedule q ~delay:1. (fun () -> log := i :: !log)
  done;
  ignore (Eq.run q);
  check "scheduling order preserved" true (List.rev !log = [ 1; 2; 3; 4; 5 ])

let test_eq_nested_scheduling () =
  let q = Eq.create () in
  let log = ref [] in
  Eq.schedule q ~delay:1. (fun () ->
      log := "outer" :: !log;
      Eq.schedule q ~delay:1. (fun () -> log := "inner" :: !log));
  ignore (Eq.run q);
  check "cascade ran" true (List.rev !log = [ "outer"; "inner" ]);
  check "now is 2" true (Eq.now q = 2.)

let test_eq_errors_and_budget () =
  let q = Eq.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Event_queue.schedule: negative delay") (fun () ->
      Eq.schedule q ~delay:(-1.) (fun () -> ()));
  Eq.schedule q ~delay:1. (fun () -> ());
  Alcotest.check_raises "past" (Invalid_argument "Event_queue.schedule_at: time in the past")
    (fun () ->
      ignore (Eq.run q);
      Eq.schedule_at q ~time:0.5 (fun () -> ()));
  (* budget stops a self-perpetuating chain *)
  let q2 = Eq.create () in
  let rec forever () = Eq.schedule q2 ~delay:1. (fun () -> forever ()) in
  forever ();
  check_int "bounded" 10 (Eq.run ~max_events:10 q2)

let test_eq_step () =
  let q = Eq.create () in
  check "empty step" false (Eq.step q);
  Eq.schedule q ~delay:1. (fun () -> ());
  check_int "pending" 1 (Eq.pending q);
  check "step" true (Eq.step q);
  check "drained" true (Eq.is_empty q)

(* ------------------------- lookup service ------------------------- *)

let test_lookup_kv () =
  let l = Lookup.create () in
  let portal = ip "172.16.0.1" in
  Lookup.post l ~portal ~service:"svc" ~key:"k" (Value.Int 1);
  check "fetch" true (Lookup.fetch l ~portal ~service:"svc" ~key:"k" = Some (Value.Int 1));
  check "missing" true (Lookup.fetch l ~portal ~service:"svc" ~key:"other" = None);
  check "portal isolation" true
    (Lookup.fetch l ~portal:(ip "172.16.0.2") ~service:"svc" ~key:"k" = None);
  Lookup.post l ~portal ~service:"svc" ~key:"k" (Value.Int 2);
  check "overwrite" true (Lookup.fetch l ~portal ~service:"svc" ~key:"k" = Some (Value.Int 2));
  check "keys" true (Lookup.keys l ~portal ~service:"svc" = [ "k" ])

let test_lookup_rpc_accounting () =
  let l = Lookup.create () in
  let portal = ip "172.16.0.1" in
  check "no handler" true (Lookup.rpc l ~portal ~service:"x" (Value.Int 0) = None);
  Lookup.register_handler l ~portal ~service:"x" (fun v ->
      Option.map (fun n -> Value.Int (n + 1)) (Value.as_int v));
  check "handled" true (Lookup.rpc l ~portal ~service:"x" (Value.Int 41) = Some (Value.Int 42));
  check "handler declines" true (Lookup.rpc l ~portal ~service:"x" (Value.Str "no") = None);
  check "accesses counted" true (Lookup.accesses l > 0);
  Lookup.reset_accesses l;
  check_int "reset" 0 (Lookup.accesses l)

(* ------------------------- network ------------------------- *)

let mk_net chain =
  (* chain of customer->provider ASes, e.g. [1;2;3]: 1 cust of 2 cust of 3 *)
  let net = Network.create () in
  List.iter
    (fun n ->
      Network.add_speaker net
        (Speaker.create
           (Speaker.config ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())))
    chain;
  let rec links = function
    | a :: (b :: _ as rest) ->
      Network.link net ~a:(asn a) ~b:(asn b) ~b_is:P.To_provider ();
      links rest
    | _ -> ()
  in
  links chain;
  net

let origin_ia n prefix =
  Ia.originate ~prefix:(pfx prefix) ~origin_asn:(asn n)
    ~next_hop:(Network.speaker_addr (asn n)) ()

let test_network_propagation () =
  let net = mk_net [ 1; 2; 3; 4 ] in
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  let stats = Network.run net in
  check "messages flowed" true (stats.Network.messages >= 3);
  check "bytes counted" true (stats.Network.announce_bytes > 0);
  let best = Speaker.best (Network.speaker net (asn 4)) (pfx "99.0.0.0/24") in
  ( match best with
    | Some chosen ->
      check "full path" true
        (Ia.asns_on_path chosen.Speaker.candidate.Dbgp_core.Decision_module.ia
        = [ asn 3; asn 2; asn 1 ])
    | None -> Alcotest.fail "AS 4 should learn the route" );
  check "converged time positive" true (stats.Network.converged_at > 0.)

let test_network_next_hop_fib () =
  let net = mk_net [ 1; 2; 3 ] in
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  let s3 = Network.speaker net (asn 3) in
  check "fib points at 2" true
    (Speaker.next_hop_of s3 (ip "99.0.0.5") = Some (Network.speaker_addr (asn 2)));
  check "unknown dest" true (Speaker.next_hop_of s3 (ip "55.0.0.1") = None)

let test_network_link_failure () =
  let net = mk_net [ 1; 2; 3 ] in
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  check "learned" true (Speaker.best (Network.speaker net (asn 3)) (pfx "99.0.0.0/24") <> None);
  Network.fail_link net (asn 1) (asn 2);
  ignore (Network.run net);
  check "withdrawn everywhere" true
    (Speaker.best (Network.speaker net (asn 3)) (pfx "99.0.0.0/24") = None)

let test_network_alternate_path_after_failure () =
  (* diamond: 1 -> 2 -> 4 and 1 -> 3 -> 4 (all customer->provider up). *)
  let net = Network.create () in
  List.iter
    (fun n ->
      Network.add_speaker net
        (Speaker.create (Speaker.config ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())))
    [ 1; 2; 3; 4 ];
  Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:P.To_provider ();
  Network.link net ~a:(asn 1) ~b:(asn 3) ~b_is:P.To_provider ();
  Network.link net ~a:(asn 2) ~b:(asn 4) ~b_is:P.To_provider ();
  Network.link net ~a:(asn 3) ~b:(asn 4) ~b_is:P.To_provider ();
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  let via_first =
    match Speaker.best (Network.speaker net (asn 4)) (pfx "99.0.0.0/24") with
    | Some c -> Ia.asns_on_path c.Speaker.candidate.Dbgp_core.Decision_module.ia
    | None -> []
  in
  check "initially reachable" true (via_first <> []);
  let middle = List.hd via_first in
  Network.fail_link net (Asn.of_int (Asn.to_int middle)) (asn 4);
  ignore (Network.run net);
  ( match Speaker.best (Network.speaker net (asn 4)) (pfx "99.0.0.0/24") with
    | Some c ->
      let path = Ia.asns_on_path c.Speaker.candidate.Dbgp_core.Decision_module.ia in
      check "rerouted around failure" false (List.mem middle path)
    | None -> Alcotest.fail "alternate path should exist" )

let test_network_duplicate_speaker () =
  let net = Network.create () in
  let s = Speaker.create (Speaker.config ~asn:(asn 1) ~addr:(Network.speaker_addr (asn 1)) ()) in
  Network.add_speaker net s;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Network.add_speaker: duplicate speaker address")
    (fun () -> Network.add_speaker net s)

let test_network_inject () =
  (* A spoofed announcement from an unknown peer is processed like any
     other message (attack-injection hook). *)
  let net = mk_net [ 1; 2 ] in
  let bogus = Dbgp_core.Peer.make ~asn:(asn 66) ~addr:(ip "10.6.6.6") in
  Network.inject net ~from:bogus ~to_:(asn 2)
    (Speaker.Announce (origin_ia 66 "66.0.0.0/24"));
  ignore (Network.run net);
  check "spoofed route installed (no BGPSec!)" true
    (Speaker.best (Network.speaker net (asn 2)) (pfx "66.0.0.0/24") <> None)

let test_network_stats_withdrawals () =
  let net = mk_net [ 1; 2; 3 ] in
  Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run net);
  Network.fail_link net (asn 1) (asn 2);
  let stats = Network.run net in
  check "withdrawals counted" true (stats.Network.withdrawals >= 1)

let test_network_mrai_batches () =
  (* Diamond where AS 4 hears a long path first, then a shorter one: the
     transient extra advertisement to downstream AS 5 is suppressed by
     the MRAI batch (only the final state is delivered). *)
  let build mrai =
    let net = Network.create () in
    List.iter
      (fun n ->
        Network.add_speaker net
          (Speaker.create (Speaker.config ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())))
      [ 1; 2; 3; 4; 5 ];
    Network.set_mrai net mrai;
    Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:P.To_provider ~latency:5. ();
    Network.link net ~a:(asn 1) ~b:(asn 3) ~b_is:P.To_provider ~latency:1. ();
    Network.link net ~a:(asn 3) ~b:(asn 2) ~b_is:P.To_provider ~latency:1. ();
    Network.link net ~a:(asn 2) ~b:(asn 4) ~b_is:P.To_provider ~latency:1. ();
    Network.link net ~a:(asn 4) ~b:(asn 5) ~b_is:P.To_provider ~latency:1. ();
    Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
    Network.run net
  in
  let immediate = build 0. and batched = build 30. in
  check "batching reduces messages" true
    (batched.Network.messages < immediate.Network.messages);
  check "negative mrai rejected" true
    ( try
        Network.set_mrai (Network.create ()) (-1.);
        false
      with Invalid_argument _ -> true )

let test_network_mrai_converges_same_routes () =
  let routes mrai =
    let net = mk_net [ 1; 2; 3; 4 ] in
    Network.set_mrai net mrai;
    Network.originate net (asn 1) (origin_ia 1 "99.0.0.0/24");
    ignore (Network.run net);
    match Speaker.best (Network.speaker net (asn 4)) (pfx "99.0.0.0/24") with
    | Some c -> Ia.asns_on_path c.Speaker.candidate.Dbgp_core.Decision_module.ia
    | None -> []
  in
  check "same final routes with and without MRAI" true (routes 0. = routes 10.)

let test_network_batched_delivery () =
  (* Attribute-bucketed frames are a transport optimization: with and
     without them the network must converge to identical routes, and
     with them the same table must cross the wire in fewer messages. *)
  let n = 12 in
  let build batching =
    let net = mk_net [ 1; 2; 3; 4 ] in
    Network.set_mrai net 5.;
    Network.set_batching net batching;
    for i = 0 to n - 1 do
      Network.originate net (asn 1) (origin_ia 1 (Printf.sprintf "99.%d.0.0/24" i))
    done;
    let stats = Network.run net in
    (net, stats)
  in
  let net_b, st_b = build true in
  let net_p, st_p = build false in
  let path net i =
    match
      Speaker.best (Network.speaker net (asn 4))
        (pfx (Printf.sprintf "99.%d.0.0/24" i))
    with
    | Some c -> Ia.asns_on_path c.Speaker.candidate.Dbgp_core.Decision_module.ia
    | None -> []
  in
  for i = 0 to n - 1 do
    check "route reaches AS 4" true (path net_b i <> []);
    check "same path either way" true (path net_b i = path net_p i)
  done;
  check "batching sends fewer messages" true
    (st_b.Network.messages < st_p.Network.messages);
  check "frames counted" true (net_counter net_b "net.batch.frames" > 0);
  check "per-prefix messages saved" true
    (net_counter net_b "net.batch.saved" >= n - 1);
  check_int "batching off leaves counters silent" 0
    (net_counter net_p "net.batch.frames")

let test_network_sync_withdraw_sweep () =
  (* Routes withdrawn while a session is down leave tombstones; the
     incremental sync after a graceful re-establish sweeps them out as
     one batched withdraw frame, counted under sync.withdrawn. *)
  let n = 10 and k = 6 in
  let net = mk_net [ 1; 2 ] in
  Network.set_mrai net 5.;
  Network.set_batching net true;
  Network.set_graceful_restart net (Some 500.);
  for i = 0 to n - 1 do
    Network.originate net (asn 1) (origin_ia 1 (Printf.sprintf "99.%d.0.0/24" i))
  done;
  ignore (Network.run net);
  Network.fail_link net (asn 1) (asn 2);
  for i = 0 to k - 1 do
    Network.withdraw_origin net (asn 1) (pfx (Printf.sprintf "99.%d.0.0/24" i))
  done;
  let wd0 = Network.counter_total net "sync.withdrawn" in
  let saved0 = net_counter net "net.batch.saved" in
  (* Re-establish inside the restart window: a free-running Network.run
     would drain the queue past the window expiry and flush the stale
     state, so the recover rides the event queue. *)
  Eq.schedule (Network.queue net) ~delay:5. (fun () ->
      Network.recover_link net (asn 1) (asn 2));
  ignore (Network.run net);
  check "sweep counted under sync.withdrawn" true
    (Network.counter_total net "sync.withdrawn" - wd0 >= k);
  check "sweep left as a batched frame" true
    (net_counter net "net.batch.saved" - saved0 >= k - 1);
  let best i =
    Speaker.best (Network.speaker net (asn 2)) (pfx (Printf.sprintf "99.%d.0.0/24" i))
  in
  for i = 0 to k - 1 do
    check "withdrawn route gone" true (best i = None)
  done;
  for i = k to n - 1 do
    check "surviving route retained" true (best i <> None)
  done;
  check_int "no stale routes left" 0 (Network.stale_total net)

let test_network_duplicate_delivery () =
  (* Session-layer retransmits: every message delivered twice.  The
     duplicate copies must be absorbed by the speakers (no decision
     re-runs, no extra advertisements) and the network must converge to
     exactly the routes of a fault-free run. *)
  let routes net =
    match Speaker.best (Network.speaker net (asn 4)) (pfx "99.0.0.0/24") with
    | Some c -> Ia.asns_on_path c.Speaker.candidate.Dbgp_core.Decision_module.ia
    | None -> []
  in
  let clean = mk_net [ 1; 2; 3; 4 ] in
  Network.originate clean (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run clean);
  let dup = mk_net [ 1; 2; 3; 4 ] in
  let f = Dbgp_netsim.Fault_model.create ~seed:1 () in
  Dbgp_netsim.Fault_model.set_duplicate f 1.0;
  Network.set_fault_model dup f;
  Network.originate dup (asn 1) (origin_ia 1 "99.0.0.0/24");
  ignore (Network.run dup);
  check "duplicates injected" true (Dbgp_netsim.Fault_model.duplicated f > 0);
  check "duplicate copies absorbed" true
    (Network.counter_total dup "updates.duplicate" > 0);
  check "same routes as the fault-free run" true (routes dup = routes clean);
  check_int "no route flaps from retransmits" 0
    (Network.counter_total dup "withdrawals.received")

(* --------------- merge/drain order reference model --------------- *)

(* The contract a sharded run leans on (Shard.drain merges mailbox
   arrivals into region queues): [merge ~into:dst src] appends [src]'s
   events in their (time, seq) order, clamping past times to [dst]'s
   clock, so at equal times [dst]'s pre-existing events drain first and
   [src]'s relative order survives.  Model: a Map keyed by
   (time, dst-before-src, rank) replayed against the real queue after an
   arbitrary partial drain. *)
let qcheck_merge =
  let open QCheck in
  let module Key = struct
    type t = float * int * int

    let compare = Stdlib.compare
  end in
  let module M = Map.Make (Key) in
  Test.make ~name:"merge/drain order matches Map reference model" ~count:500
    (triple
       (list_of_size (Gen.int_range 0 12) (int_bound 40))
       (list_of_size (Gen.int_range 0 12) (int_bound 40))
       (int_bound 40))
    (fun (dst_raw, src_raw, h_raw) ->
      (* Quarter-step grid makes same-time ties common. *)
      let t_of i = float_of_int i /. 4. in
      let dst_times = List.map t_of dst_raw in
      let src_times = List.map t_of src_raw in
      let horizon = t_of h_raw in
      let log = ref [] in
      let emit tag () = log := tag :: !log in
      let dst = Eq.create () and src = Eq.create () in
      List.iteri (fun i t -> Eq.schedule_at dst ~time:t (emit ("d", i))) dst_times;
      List.iteri (fun j t -> Eq.schedule_at src ~time:t (emit ("s", j))) src_times;
      ignore (Eq.run_until dst ~horizon);
      Eq.merge ~into:dst src;
      let src_empty = Eq.is_empty src in
      ignore (Eq.run dst);
      (* Reference: the partial drain runs dst events strictly below the
         horizon in (time, seq) order and leaves the clock on the last
         one; everything else replays from the model map. *)
      let executed, remaining =
        List.partition (fun ((t, _, _), _) -> t < horizon)
          (List.mapi (fun i t -> ((t, 0, i), ("d", i))) dst_times)
      in
      let executed = List.sort (fun (a, _) (b, _) -> Key.compare a b) executed in
      let clock =
        List.fold_left (fun c ((t, _, _), _) -> max c t) 0. executed
      in
      let src_ranked =
        List.sort
          (fun (t, j, _) (t', j', _) -> Stdlib.compare (t, j) (t', j'))
          (List.mapi (fun j t -> (t, j, ("s", j))) src_times)
        |> List.mapi (fun rank (t, _, tag) -> ((max t clock, 1, rank), tag))
      in
      let model =
        List.fold_left
          (fun m (k, v) -> M.add k v m)
          M.empty (remaining @ src_ranked)
      in
      let expected =
        List.map snd executed @ List.map snd (M.bindings model)
      in
      src_empty && List.rev !log = expected)

let () =
  Alcotest.run "netsim"
    [ ("event-queue",
       [ Alcotest.test_case "ordering" `Quick test_eq_ordering;
         Alcotest.test_case "fifo ties" `Quick test_eq_fifo_at_same_time;
         Alcotest.test_case "nested" `Quick test_eq_nested_scheduling;
         Alcotest.test_case "errors/budget" `Quick test_eq_errors_and_budget;
         Alcotest.test_case "step" `Quick test_eq_step ]);
      ("lookup",
       [ Alcotest.test_case "kv" `Quick test_lookup_kv;
         Alcotest.test_case "rpc/accounting" `Quick test_lookup_rpc_accounting ]);
      ("network",
       [ Alcotest.test_case "propagation" `Quick test_network_propagation;
         Alcotest.test_case "fib" `Quick test_network_next_hop_fib;
         Alcotest.test_case "link failure" `Quick test_network_link_failure;
         Alcotest.test_case "reroute" `Quick test_network_alternate_path_after_failure;
         Alcotest.test_case "duplicate speaker" `Quick test_network_duplicate_speaker;
         Alcotest.test_case "inject" `Quick test_network_inject;
         Alcotest.test_case "withdrawal stats" `Quick test_network_stats_withdrawals;
         Alcotest.test_case "mrai batches" `Quick test_network_mrai_batches;
         Alcotest.test_case "mrai same routes" `Quick test_network_mrai_converges_same_routes;
         Alcotest.test_case "batched delivery" `Quick test_network_batched_delivery;
         Alcotest.test_case "sync withdraw sweep" `Quick test_network_sync_withdraw_sweep;
         Alcotest.test_case "duplicate delivery absorbed" `Quick
           test_network_duplicate_delivery ]);
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_merge ]) ]
