(* The observability layer: metrics registry semantics, trace-ring
   accounting, snapshot JSON shape, and the instrumented simulator
   end-to-end. *)

open Dbgp_types
module Metrics = Dbgp_obs.Metrics
module Trace = Dbgp_obs.Trace
module Snapshot = Dbgp_obs.Snapshot
module Speaker = Dbgp_core.Speaker
module Network = Dbgp_netsim.Network
module Session = Dbgp_netsim.Session
module E = Dbgp_eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------- metrics ------------------------- *)

let test_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.b" in
  check_int "starts at 0" 0 (Metrics.count c);
  Metrics.incr c;
  Metrics.incr ~by:10 c;
  check_int "accumulates" 11 (Metrics.count c);
  check "same instrument on re-lookup" true (Metrics.counter m "a.b" == c);
  check_int "shared state" 11 (Metrics.count (Metrics.counter m "a.b"));
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) c);
  check "find hit" true (Metrics.find_counter m "a.b" <> None);
  check "find miss" true (Metrics.find_counter m "nope" = None);
  Alcotest.(check (list (pair string int)))
    "enumeration is name-sorted"
    [ ("a.b", 11); ("z", 0) ]
    ( ignore (Metrics.counter m "z");
      Metrics.counters m )

let test_gauges () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "clock" in
  check "initial 0" true (Metrics.value g = 0.);
  Metrics.set g 42.5;
  Metrics.set g 17.25;
  check "last write wins" true (Metrics.value g = 17.25)

let test_histogram_bucketing () =
  check_int "below 1 -> bucket 0" 0 (Metrics.bucket_of 0.5);
  check_int "nan -> bucket 0" 0 (Metrics.bucket_of Float.nan);
  check_int "negative -> bucket 0" 0 (Metrics.bucket_of (-3.));
  check_int "1 -> bucket 1" 1 (Metrics.bucket_of 1.0);
  check_int "1.99 -> bucket 1" 1 (Metrics.bucket_of 1.99);
  check_int "2 -> bucket 2" 2 (Metrics.bucket_of 2.0);
  check_int "3.99 -> bucket 2" 2 (Metrics.bucket_of 3.99);
  check_int "4 -> bucket 3" 3 (Metrics.bucket_of 4.0);
  check_int "huge -> last bucket" (Metrics.nbuckets - 1)
    (Metrics.bucket_of 1e30);
  check "upper of 0 is 1" true (Metrics.bucket_upper 0 = 1.);
  check "upper of 3 is 8" true (Metrics.bucket_upper 3 = 8.);
  check "last upper is inf" true
    (Metrics.bucket_upper (Metrics.nbuckets - 1) = Float.infinity)

let test_histogram_observe () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  check "empty quantile is 0" true (Metrics.quantile h 0.5 = 0.);
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 3.5; 100. ];
  check_int "count" 5 (Metrics.observations h);
  check "sum" true (Metrics.hist_sum h = 108.5);
  check "max" true (Metrics.hist_max h = 100.);
  (* Conservative quantiles: the bucket upper bound. 100 lands in
     [64, 128). *)
  check "p50 <= 4" true (Metrics.quantile h 0.5 <= 4.);
  check "p99 is 128" true (Metrics.quantile h 0.99 = 128.);
  Alcotest.check_raises "quantile range"
    (Invalid_argument "Metrics.quantile: q outside [0, 1]") (fun () ->
      ignore (Metrics.quantile h 1.5))

(* ------------------------- trace ------------------------- *)

let ev i = Trace.Damping_reuse { asn = i; prefix = "10.0.0.0/8" }

let test_trace_ring () =
  let t = Trace.create ~capacity:4 () in
  check_int "capacity" 4 (Trace.capacity t);
  check_int "empty" 0 (List.length (Trace.entries t));
  for i = 1 to 6 do
    Trace.emit t ~at:(float_of_int i) (ev i)
  done;
  check_int "emitted counts all" 6 (Trace.emitted t);
  check_int "overwritten" 2 (Trace.overwritten t);
  let es = Trace.entries t in
  check_int "retains capacity" 4 (List.length es);
  Alcotest.(check (list int))
    "oldest first, newest kept" [ 3; 4; 5; 6 ]
    (List.map
       (fun (e : Trace.entry) ->
         match e.Trace.event with
         | Trace.Damping_reuse { asn; _ } -> asn
         | _ -> -1)
       es);
  Trace.clear t;
  check_int "clear empties" 0 (List.length (Trace.entries t));
  check_int "clear resets emitted" 0 (Trace.emitted t);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_trace_labels () =
  check_str "session_state" "session_state"
    (Trace.label (Trace.Session_state { asn = 1; peer = 2; state = "Idle" }));
  check_str "update_sent" "update_sent"
    (Trace.label
       (Trace.Update_sent
          { src = 1; dst = 2; prefix = "p"; bytes = 3; withdraw = false }));
  check_str "mrai_flush" "mrai_flush"
    (Trace.label (Trace.Mrai_flush { src = 1; dst = 2; batched = 3 }))

(* ------------------------- snapshot ------------------------- *)

let test_json_rendering () =
  check_str "scalars" "[null,true,42,1.5,\"a\\\"b\"]"
    (Snapshot.to_json
       (Snapshot.List
          [ Snapshot.Null; Snapshot.Bool true; Snapshot.Int 42;
            Snapshot.Float 1.5; Snapshot.String "a\"b" ]));
  check_str "nan is null" "null" (Snapshot.to_json (Snapshot.Float Float.nan));
  check_str "inf is null" "null"
    (Snapshot.to_json (Snapshot.Float Float.infinity));
  check_str "integral float" "3" (Snapshot.to_json (Snapshot.Float 3.0));
  check_str "object" "{\"k\":[]}"
    (Snapshot.to_json (Snapshot.Obj [ ("k", Snapshot.List []) ]))

let test_snapshot_of_metrics () =
  let m = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter m "msgs");
  Metrics.set (Metrics.gauge m "t") 3.5;
  Metrics.observe (Metrics.histogram m "sz") 10.;
  let s = Snapshot.of_metrics m in
  ( match Snapshot.member "counters" s with
    | Some (Snapshot.Obj [ ("msgs", Snapshot.Int 7) ]) -> ()
    | _ -> Alcotest.fail "counters section wrong" );
  ( match Snapshot.member "histograms" s with
    | Some hs -> (
      match Snapshot.member "sz" hs with
      | Some h ->
        check "hist count" true
          (Snapshot.member "count" h = Some (Snapshot.Int 1));
        check "hist p50" true (Snapshot.member "p50" h <> None)
      | None -> Alcotest.fail "sz histogram missing" )
    | None -> Alcotest.fail "histograms section missing" );
  (* The whole thing renders without raising. *)
  check "renders" true (String.length (Snapshot.to_json_pretty s) > 0)

let test_snapshot_of_trace () =
  let t = Trace.create ~capacity:8 () in
  Trace.emit t ~at:1.
    (Trace.Update_sent
       { src = 1; dst = 2; prefix = "99.0.0.0/24"; bytes = 64; withdraw = false });
  Trace.emit t ~at:2. (Trace.Damping_reuse { asn = 3; prefix = "99.0.0.0/24" });
  let s = Snapshot.of_trace t in
  check "emitted field" true (Snapshot.member "emitted" s = Some (Snapshot.Int 2));
  ( match Snapshot.member "events" s with
    | Some (Snapshot.List [ first; second ]) ->
      check "first is update_sent" true
        (Snapshot.member "type" first = Some (Snapshot.String "update_sent"));
      check "bytes carried" true
        (Snapshot.member "bytes" first = Some (Snapshot.Int 64));
      check "second is damping_reuse" true
        (Snapshot.member "type" second = Some (Snapshot.String "damping_reuse"))
    | _ -> Alcotest.fail "events list wrong" );
  ( match Snapshot.member "events" (Snapshot.of_trace ~last:1 t) with
    | Some (Snapshot.List [ only ]) ->
      check "last=1 keeps newest" true
        (Snapshot.member "type" only = Some (Snapshot.String "damping_reuse"))
    | _ -> Alcotest.fail "last=1 wrong" )

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  check "p0 is min" true (Snapshot.percentile xs 0. = 1.);
  check "p100 is max" true (Snapshot.percentile xs 1. = 4.);
  check "p50 interpolates" true (Snapshot.percentile xs 0.5 = 2.5);
  check "empty is nan" true (Float.is_nan (Snapshot.percentile [] 0.5));
  check "singleton" true (Snapshot.percentile [ 7. ] 0.9 = 7.);
  (* The consumers (Convergence.observe, Chaos) feed unsorted
     last-change times and can produce empty or one-element samples on
     censored runs — pin the whole edge-case surface. *)
  check "input need not be sorted" true
    (Snapshot.percentile [ 3.; 1.; 4.; 2. ] 0.5 = 2.5);
  check "two samples interpolate" true
    (Snapshot.percentile [ 10.; 20. ] 0.25 = 12.5);
  check "singleton at p0" true (Snapshot.percentile [ 7. ] 0. = 7.);
  check_str "empty-sample nan renders as JSON null" "null"
    (Snapshot.to_json (Snapshot.Float (Snapshot.percentile [] 0.9)));
  Alcotest.check_raises "q above 1 rejected"
    (Invalid_argument "Snapshot.percentile: q outside [0, 1]") (fun () ->
      ignore (Snapshot.percentile [ 1. ] 1.5));
  Alcotest.check_raises "q below 0 rejected even on empty input"
    (Invalid_argument "Snapshot.percentile: q outside [0, 1]") (fun () ->
      ignore (Snapshot.percentile [] (-0.1)))

(* ------------------------- end to end ------------------------- *)

let test_speaker_instruments () =
  let s =
    Speaker.create
      (Speaker.config ~asn:(Asn.of_int 64501)
         ~addr:(Ipv4.of_string "10.0.0.1") ())
  in
  let ia =
    Dbgp_core.Ia.originate
      ~prefix:(Prefix.of_string "99.0.0.0/24")
      ~origin_asn:(Asn.of_int 64501)
      ~next_hop:(Ipv4.of_string "10.0.0.1")
      ()
  in
  ignore (Speaker.originate ~now:2.5 s ia);
  let count name =
    match Metrics.find_counter (Speaker.metrics s) name with
    | Some c -> Metrics.count c
    | None -> 0
  in
  check_int "one decision run" 1 (count "decision.runs");
  check_int "one change" 1 (count "decision.changes");
  ( match Metrics.find_gauge (Speaker.metrics s) "decision.last_change_at" with
    | Some g -> check "change time recorded" true (Metrics.value g = 2.5)
    | None -> Alcotest.fail "gauge missing" );
  check "decision_run traced" true
    (List.exists
       (fun (e : Trace.entry) ->
         match e.Trace.event with
         | Trace.Decision_run { asn = 64501; changed = true; _ } -> true
         | _ -> false)
       (Trace.entries (Speaker.trace s)))

let test_network_snapshot () =
  let o = E.Convergence.observe ~ases:30 ~recent_events:10 ~seed:7 () in
  check "messages flowed" true (o.E.Convergence.messages > 0);
  check "bytes counted" true (o.E.Convergence.announce_bytes > 0);
  check "decisions ran" true
    (o.E.Convergence.decision_runs >= o.E.Convergence.decision_changes);
  check "changes happened" true (o.E.Convergence.decision_changes > 0);
  check "percentiles ordered" true
    (o.E.Convergence.p50 <= o.E.Convergence.p90
    && o.E.Convergence.p90 <= o.E.Convergence.p99);
  let s = o.E.Convergence.snapshot in
  ( match Snapshot.member "network" s with
    | Some net -> (
      match Snapshot.member "counters" net with
      | Some (Snapshot.Obj fields) ->
        check "net.messages present" true (List.mem_assoc "net.messages" fields)
      | _ -> Alcotest.fail "network counters missing" )
    | None -> Alcotest.fail "network section missing" );
  ( match Snapshot.member "convergence" s with
    | Some c -> check "count positive" true
        ( match Snapshot.member "count" c with
          | Some (Snapshot.Int n) -> n > 0
          | _ -> false )
    | None -> Alcotest.fail "convergence section missing" );
  ( match Snapshot.member "trace" s with
    | Some tr -> (
      match Snapshot.member "events" tr with
      | Some (Snapshot.List es) ->
        check "trace bounded" true (List.length es <= 10)
      | _ -> Alcotest.fail "trace events missing" )
    | None -> Alcotest.fail "trace section missing" )

let test_session_instruments () =
  let q = Dbgp_netsim.Event_queue.create () in
  let cfg asn id : Dbgp_bgp.Fsm.config =
    { Dbgp_bgp.Fsm.my_asn = Asn.of_int asn; my_id = Ipv4.of_string id;
      hold_time = 90;
      capabilities = [ Dbgp_bgp.Message.capability_dbgp ] }
  in
  let a, b =
    Session.create q ~a:(cfg 64501 "10.0.0.1") ~b:(cfg 64502 "10.0.0.2") ()
  in
  Session.start a;
  Session.start b;
  ignore (Dbgp_netsim.Event_queue.run ~max_events:100 q);
  check "established" true (Session.state a = Dbgp_bgp.Fsm.Established);
  let count ep name =
    match Metrics.find_counter (Session.metrics ep) name with
    | Some c -> Metrics.count c
    | None -> 0
  in
  check_int "one establishment" 1 (count a "fsm.established");
  check "transitions counted" true (count a "fsm.transitions" >= 3);
  let states =
    List.filter_map
      (fun (e : Trace.entry) ->
        match e.Trace.event with
        | Trace.Session_state { state; _ } -> Some state
        | _ -> None)
      (Trace.entries (Session.trace a))
  in
  check "climbed to Established" true
    (List.exists (( = ) "Established") states);
  ( match Metrics.histograms (Session.metrics a) with
    | hs -> check "send bytes observed" true (List.mem_assoc "session.send_bytes" hs) )

let test_error_observability () =
  check_str "rx_error label" "rx_error"
    (Trace.label
       (Trace.Rx_error
          { asn = 1; peer = 2; cls = "treat_as_withdraw"; stage = "framing";
            reason = "x" }));
  (* A wire-level error must surface under its pinned names in both the
     counter registry and the trace snapshot. *)
  let s =
    Speaker.create
      (Speaker.config ~asn:(Asn.of_int 64501)
         ~addr:(Ipv4.of_string "10.0.0.1") ())
  in
  let from =
    Dbgp_core.Peer.make ~asn:(Asn.of_int 64502)
      ~addr:(Ipv4.of_string "10.0.0.2")
  in
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer from);
  ignore (Speaker.receive_wire s ~from "\xff");
  ( match Snapshot.member "counters" (Snapshot.of_metrics (Speaker.metrics s)) with
    | Some (Snapshot.Obj fields) ->
      check "errors.session_reset pinned" true
        (List.mem_assoc "errors.session_reset" fields)
    | _ -> Alcotest.fail "counters section missing" );
  ( match Snapshot.member "events" (Snapshot.of_trace (Speaker.trace s)) with
    | Some (Snapshot.List es) -> (
      match
        List.filter
          (fun e ->
            Snapshot.member "type" e = Some (Snapshot.String "rx_error"))
          es
      with
      | e :: _ ->
        check "cls field" true
          (Snapshot.member "cls" e = Some (Snapshot.String "session_reset"));
        check "stage field" true
          (Snapshot.member "stage" e = Some (Snapshot.String "framing"));
        check "reason field present" true (Snapshot.member "reason" e <> None)
      | [] -> Alcotest.fail "rx_error not traced" )
    | _ -> Alcotest.fail "events missing" )

let test_chaos_snapshot_names () =
  (* The chaos report's JSON snapshot must pin the resilience metric
     names: corruption counters on the network registry, error-class
     totals under speakers, and the invariants section. *)
  let r =
    E.Chaos.run
      { E.Chaos.default with E.Chaos.ases = 20; seed = 5; corruption = 0.5 }
  in
  let s = r.E.Chaos.obs in
  ( match Snapshot.member "network" s with
    | Some net -> (
      match Snapshot.member "counters" net with
      | Some (Snapshot.Obj fields) ->
        check "net.corruption.injected pinned" true
          (List.mem_assoc "net.corruption.injected" fields)
      | _ -> Alcotest.fail "network counters missing" )
    | None -> Alcotest.fail "network section missing" );
  ( match Snapshot.member "speakers" s with
    | Some (Snapshot.Obj fields) ->
      check "errors.treat_as_withdraw pinned" true
        (List.mem_assoc "errors.treat_as_withdraw" fields)
    | _ -> Alcotest.fail "speakers section missing" );
  ( match Snapshot.member "invariants" s with
    | Some inv ->
      check "invariants.ok pinned" true
        (Snapshot.member "ok" inv = Some (Snapshot.Bool true));
      ( match Snapshot.member "violations" inv with
        | Some (Snapshot.Obj ks) ->
          check "per-kind violation counters" true
            (List.mem_assoc "forwarding_loop" ks
            && List.mem_assoc "passthrough_mutated" ks)
        | _ -> Alcotest.fail "violations section missing" )
    | None -> Alcotest.fail "invariants section missing" )

(* The batching and compact-route-store metric names are part of the
   observable schema: [net.batch.*] on the network registry once a
   batched MRAI flush has fired, and [attr_table.*] on the domain
   registry once a speaker has shared an attribute set. *)
let test_batch_attr_counter_names () =
  let net = Network.create () in
  List.iter (fun i -> ignore (E.Harness.add_as net i)) [ 1; 2 ];
  Network.link net ~a:(Asn.of_int 1) ~b:(Asn.of_int 2)
    ~b_is:Dbgp_bgp.Policy.To_provider ();
  Network.set_mrai net 1.0;
  Network.set_batching net true;
  for i = 0 to 7 do
    Network.originate net (Asn.of_int 1)
      (Dbgp_core.Ia.originate
         ~prefix:(Prefix.of_string (Printf.sprintf "99.0.%d.0/24" i))
         ~origin_asn:(Asn.of_int 1)
         ~next_hop:(Network.speaker_addr (Asn.of_int 1)) ())
  done;
  ignore (Network.run net);
  let count name =
    Metrics.count (Metrics.counter (Network.metrics net) name)
  in
  check "net.batch.frames counted" true (count "net.batch.frames" > 0);
  check "net.batch.saved counts elided messages" true
    (count "net.batch.saved" > 0);
  let at = Dbgp_core.Attr_table.metrics () in
  List.iter
    (fun name ->
      check (name ^ " registered") true (Metrics.find_counter at name <> None))
    [ "attr_table.hits"; "attr_table.misses"; "attr_table.evictions";
      "attr_table.overflow" ];
  check "attr sets resident" true (Dbgp_core.Attr_table.occupancy () > 0);
  (* Frames decode back into per-prefix routes at the receiver. *)
  check "batched routes delivered" true
    (Speaker.best (Network.speaker net (Asn.of_int 2))
       (Prefix.of_string "99.0.3.0/24")
     <> None)

(* BENCH_pipeline.json schema: the row shape emitted by the pipeline
   benchmark is consumed downstream, so every field name and JSON type is
   pinned here against a small (fast) run. *)
let test_pipeline_bench_schema () =
  let r = E.Pipeline_bench.run ~ases:25 () in
  let s = E.Pipeline_bench.to_snapshot r in
  let int_fields =
    [ "ases"; "prefixes"; "messages"; "updates"; "decision_runs";
      "dirty_marks"; "runs_saved"; "drains"; "export_hits"; "export_misses" ]
  in
  let float_fields =
    [ "runs_per_update"; "export_hit_rate"; "elapsed_s"; "updates_per_s" ]
  in
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected Int field"))
    int_fields;
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Float _) | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected numeric field"))
    float_fields;
  ( match Snapshot.member "ases" s with
    | Some (Snapshot.Int 25) -> ()
    | _ -> Alcotest.fail "ases must echo the topology size" );
  (* The two headline claims, pinned where the schema is: coalescing
     beats run-per-message and the export cache is doing work. *)
  check "runs per update < 1.0" true (r.E.Pipeline_bench.runs_per_update < 1.0);
  check "export cache hits > 0" true (r.E.Pipeline_bench.export_hits > 0);
  check "marks = runs + saved" true
    (r.E.Pipeline_bench.dirty_marks
     >= r.E.Pipeline_bench.runs_saved);
  check "json renders" true
    (String.length (Snapshot.to_json_pretty s) > 0)

(* BENCH_perf.json rows come straight from [Perf_bench.to_snapshot]; pin
   the schema here so the bench artifact cannot drift silently.  A small
   wire-mode run doubles as an end-to-end check that the decode memo
   sees real receive-side traffic. *)
let test_perf_bench_schema () =
  let r = E.Perf_bench.run ~ases:25 ~prefixes:8 ~wire:true () in
  let s = E.Perf_bench.to_snapshot r in
  let int_fields =
    [ "ases"; "prefixes"; "messages"; "updates"; "events";
      "peak_heap_words"; "live_words";
      "encode_cache_hits"; "encode_cache_misses"; "decode_memo_hits";
      "decode_memo_misses" ]
  in
  let float_fields =
    [ "elapsed_s"; "cpu_s"; "updates_per_s"; "updates_per_cpu_s";
      "minor_words_per_update"; "major_words_per_update";
      "encode_cache_hit_rate"; "decode_memo_hit_rate" ]
  in
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected Int field"))
    int_fields;
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Float _) | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected numeric field"))
    float_fields;
  ( match Snapshot.member "wire" s with
    | Some (Snapshot.Bool true) -> ()
    | _ -> Alcotest.fail "wire must echo the delivery mode" );
  (* Wire mode means both caches saw the convergence traffic. *)
  check "encode cache hits > 0" true (r.E.Perf_bench.enc_hits > 0);
  check "decode memo hits > 0" true (r.E.Perf_bench.dec_hits > 0);
  ( match E.Perf_bench.headline [ { r with E.Perf_bench.wire = false } ] with
    | Some h ->
      let hs = E.Perf_bench.headline_to_snapshot h in
      List.iter
        (fun f ->
          match Snapshot.member f hs with
          | Some (Snapshot.Float _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected Float headline field"))
        [ "updates_per_s"; "baseline_updates_per_s"; "speedup";
          "minor_words_per_update"; "baseline_minor_words_per_update";
          "minor_words_reduction" ]
    | None -> Alcotest.fail "headline must pick the in-memory row" );
  check "json renders" true
    (String.length (Snapshot.to_json_pretty s) > 0)

(* BENCH_scale.json rows come straight from [Scale_bench.to_snapshot];
   pin the schema plus the headline claims: the legacy arm re-sends the
   whole table on a session bounce, the clean incremental arm streams
   ~nothing, and the churn arm re-sends only what changed. *)
let test_scale_bench_schema () =
  let r = E.Scale_bench.run ~ases:30 ~prefixes:50 ~bg:4 () in
  let s = E.Scale_bench.to_snapshot r in
  let int_fields =
    [ "ases"; "prefixes"; "bg_prefixes"; "edges"; "bg_updates";
      "load_updates"; "attr_sets"; "peak_heap_words"; "live_words";
      "full_transfer_msgs"; "full_transfer_bytes";
      "batched_transfer_msgs"; "batched_transfer_bytes"; "batch_frames";
      "clean_transfer_msgs"; "clean_skipped"; "churn_routes";
      "churn_transfer_msgs" ]
  in
  let float_fields =
    [ "bg_elapsed_s"; "bg_updates_per_s"; "load_elapsed_s"; "load_cpu_s";
      "load_updates_per_s"; "words_per_route" ]
  in
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected Int field"))
    int_fields;
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Float _) | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected numeric field"))
    float_fields;
  check "full arm re-sends the table" true
    (r.E.Scale_bench.full_transfer_msgs >= r.E.Scale_bench.prefixes);
  check "clean arm streams ~nothing" true
    (r.E.Scale_bench.clean_transfer_msgs <= 2);
  check "clean arm skipped the table" true
    (r.E.Scale_bench.clean_skipped >= r.E.Scale_bench.prefixes);
  check "churn arm re-sends only the changed slice" true
    (r.E.Scale_bench.churn_transfer_msgs
     <= r.E.Scale_bench.churn_routes + 1);
  (* The attribute-bucketed arm: the whole feed table shares one
     attribute set, so it must cross in a handful of multi-prefix
     frames — at least 4x fewer messages than the per-prefix storm. *)
  check "batched arm >= 4x fewer messages" true
    (r.E.Scale_bench.batched_transfer_msgs * 4
     <= r.E.Scale_bench.full_transfer_msgs);
  check "batched arm sends frames" true (r.E.Scale_bench.batch_frames > 0);
  (* Attribute-set sharing: the resident set count is driven by path
     diversity, not table size — a 10x larger feed table on the same
     topology must not materially grow it. *)
  check "attr sets don't scale with the table" true
    (let r10 = E.Scale_bench.run ~ases:30 ~prefixes:500 ~bg:4 () in
     r10.E.Scale_bench.attr_sets < r.E.Scale_bench.attr_sets + 50);
  (* The reachable-words delta is deterministic (no GC noise), so even
     a 50-route table must grow the network. *)
  check "routes occupy memory" true (r.E.Scale_bench.words_per_route > 0.);
  check "json renders" true
    (String.length (Snapshot.to_json_pretty s) > 0)

(* BENCH_stability.json schema: the divergence-lab report shape, pinned
   against a two-case run (one divergent gadget, one converged control),
   each classified with damping off and on. *)
let test_stability_bench_schema () =
  let cases =
    List.filter
      (fun (c : E.Stability.case) ->
        List.mem c.E.Stability.name [ "bad-gadget"; "good-gadget" ])
      (E.Scenarios.divergence_cases ())
  in
  let r = E.Stability.run_cases ~budget:4_000 cases in
  let s = E.Stability.to_snapshot r in
  ( match Snapshot.member "budget" s with
    | Some (Snapshot.Int 4000) -> ()
    | _ -> Alcotest.fail "budget must echo the event budget" );
  let rows =
    match Snapshot.member "rows" s with
    | Some (Snapshot.List rows) -> rows
    | _ -> Alcotest.fail "rows must be a list"
  in
  check_int "two cases x two damping arms" 4 (List.length rows);
  List.iter
    (fun row ->
      List.iter
        (fun f ->
          match Snapshot.member f row with
          | Some (Snapshot.Int _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected Int field"))
        [ "events"; "messages"; "decision_changes"; "withdrawals";
          "suppressions"; "reuses"; "suppressed_at_end" ];
      ( match Snapshot.member "scenario" row with
        | Some (Snapshot.String _) -> ()
        | _ -> Alcotest.fail "scenario: expected String field" );
      ( match Snapshot.member "verdict" row with
        | Some (Snapshot.String ("converged" | "oscillating" | "censored")) ->
          ()
        | _ -> Alcotest.fail "verdict: expected one of the three labels" );
      match (Snapshot.member "damping" row, Snapshot.member "censored" row) with
      | Some (Snapshot.Bool _), Some (Snapshot.Bool _) -> ()
      | _ -> Alcotest.fail "damping/censored: expected Bool fields")
    rows;
  let row scenario damping =
    List.find
      (fun row ->
        Snapshot.member "scenario" row = Some (Snapshot.String scenario)
        && Snapshot.member "damping" row = Some (Snapshot.Bool damping))
      rows
  in
  (* Verdict-dependent shape: an oscillating row carries the measured
     period and affected prefixes; a converged row the quiescence time. *)
  let bad = row "bad-gadget" false in
  ( match Snapshot.member "verdict" bad with
    | Some (Snapshot.String "oscillating") -> ()
    | _ -> Alcotest.fail "bad-gadget (no damping) must oscillate" );
  ( match Snapshot.member "period" bad with
    | Some (Snapshot.Int p) when p > 0 -> ()
    | _ -> Alcotest.fail "oscillating row needs a positive period" );
  ( match Snapshot.member "prefixes" bad with
    | Some (Snapshot.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "oscillating row needs non-empty prefixes" );
  ( match Snapshot.member "dispute_wheel" bad with
    | Some (Snapshot.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "bad-gadget row must carry its dispute wheel" );
  let good = row "good-gadget" false in
  ( match Snapshot.member "verdict" good with
    | Some (Snapshot.String "converged") -> ()
    | _ -> Alcotest.fail "good-gadget must converge" );
  ( match Snapshot.member "converged_at" good with
    | Some (Snapshot.Float _) | Some (Snapshot.Int _) -> ()
    | _ -> Alcotest.fail "converged row needs a numeric converged_at" );
  ( match Snapshot.member "period" good with
    | Some Snapshot.Null -> ()
    | _ -> Alcotest.fail "converged row has a null period" );
  check "json renders" true (String.length (Snapshot.to_json_pretty s) > 0)

(* BENCH_adversary.json schema: the blast-radius report shape — every
   topology x attack x arm combination present, per-scenario fields
   typed, and the containment contract visible in the data (an arm that
   claims containment reports zero blast radius). *)
let test_adversary_bench_schema () =
  let r = E.Adversary.run E.Adversary.default in
  let s = E.Adversary.to_snapshot r in
  List.iter
    (fun f ->
      match Snapshot.member f s with
      | Some (Snapshot.Int _) -> ()
      | _ -> Alcotest.fail (f ^ ": expected Int field"))
    [ "seed"; "brite_ases"; "caida_ases" ];
  ( match Snapshot.member "healthy" s with
    | Some (Snapshot.Bool true) -> ()
    | _ -> Alcotest.fail "the default suite must be healthy" );
  let rows =
    match Snapshot.member "scenarios" s with
    | Some (Snapshot.List rows) -> rows
    | _ -> Alcotest.fail "scenarios must be a list"
  in
  check_int "2 topologies x 6 attacks x 3 arms" 36 (List.length rows);
  List.iter
    (fun row ->
      ( match Snapshot.member "topology" row with
        | Some (Snapshot.String ("brite" | "caida")) -> ()
        | _ -> Alcotest.fail "topology: expected brite|caida" );
      ( match Snapshot.member "arm" row with
        | Some (Snapshot.String ("legacy" | "dbgp" | "dbgp_bgpsec")) -> ()
        | _ -> Alcotest.fail "arm: expected one of the three arms" );
      ( match Snapshot.member "attack" row with
        | Some (Snapshot.String _) -> ()
        | _ -> Alcotest.fail "attack: expected String field" );
      List.iter
        (fun f ->
          match Snapshot.member f row with
          | Some (Snapshot.Int _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected Int field"))
        [ "attacker"; "victim"; "ases"; "baseline_via_attacker"; "poisoned";
          "detections" ];
      List.iter
        (fun f ->
          match Snapshot.member f row with
          | Some (Snapshot.Float _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected Float field"))
        [ "blast_radius"; "time_to_poison"; "time_to_recover" ];
      List.iter
        (fun f ->
          match Snapshot.member f row with
          | Some (Snapshot.Bool _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected Bool field"))
        [ "control_clean"; "detection_applicable"; "claims_containment";
          "contained"; "recovered_clean"; "censored" ];
      (* The containment contract, as recorded in the artifact. *)
      match (Snapshot.member "claims_containment" row,
             Snapshot.member "blast_radius" row) with
      | Some (Snapshot.Bool true), Some (Snapshot.Float b) when b <> 0. ->
        Alcotest.fail "containment claimed but blast radius nonzero"
      | _ -> ())
    rows;
  check "json renders" true (String.length (Snapshot.to_json_pretty s) > 0)

(* Regression: the wire codec's registry is long-lived (domain-local,
   not per-run), so a suite that reads it without an explicit
   [Codec.wire_metrics_reset] in its setup inherits whatever earlier
   suites encoded.  Pin the discipline: reset zeroes every instrument in
   place and preserves identity, so even stale handles read zero. *)
let test_wire_registry_bleed () =
  let module Codec = Dbgp_core.Codec in
  let ia =
    Dbgp_core.Ia.originate
      ~prefix:(Prefix.of_string "10.99.0.0/24")
      ~origin_asn:(Asn.of_int 99)
      ~next_hop:(Ipv4.of_string "10.99.0.1") ()
  in
  ignore (Codec.decode (Codec.encode ia));
  ignore (Codec.encode_cached ia);
  let m = Codec.wire_metrics () in
  let before = Metrics.counters m in
  check "codec traffic recorded" true (List.exists (fun (_, n) -> n > 0) before);
  (* A handle an "earlier suite" kept around. *)
  let stale = Metrics.counter m "wire.decode_memo.misses" in
  Codec.wire_metrics_reset ();
  check "registry identity stable across reset" true
    (Codec.wire_metrics () == m);
  List.iter
    (fun (name, _) ->
      check_int (name ^ " zeroed") 0 (Metrics.count (Metrics.counter m name)))
    before;
  check_int "stale handle reads zero" 0 (Metrics.count stale);
  (* The bleed this guards against: without the reset, the next suite
     would have started from [before]'s totals instead of from zero. *)
  ignore (Codec.encode_cached ia);
  check "post-reset counts reflect only new traffic" true
    (List.for_all (fun (_, n) -> n <= 2) (Metrics.counters m))

(* BENCH_perf.json gains a sharded section (the [--domains] axis); pin
   its row shape so the artifact cannot drift silently.  A tiny
   two-domain run doubles as an end-to-end check that the determinism
   oracle feeds the bench: both rows must carry the same transcript. *)
let test_sharded_bench_schema () =
  let rows =
    E.Perf_bench.domains_suite ~ases:40 ~prefixes:6 ~regions:2
      ~domains:[ 1; 2 ] ()
  in
  check_int "one row per domain count" 2 (List.length rows);
  List.iter
    (fun r ->
      let s = E.Perf_bench.sharded_to_snapshot r in
      let int_fields =
        [ "ases"; "prefixes"; "domains"; "regions"; "cut_edges"; "epochs";
          "cores"; "messages"; "updates"; "events" ]
      in
      let float_fields =
        [ "lookahead"; "elapsed_s"; "cpu_s"; "updates_per_s";
          "speedup_vs_1_domain" ]
      in
      List.iter
        (fun f ->
          match Snapshot.member f s with
          | Some (Snapshot.Int _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected Int field"))
        int_fields;
      List.iter
        (fun f ->
          match Snapshot.member f s with
          | Some (Snapshot.Float _) | Some (Snapshot.Int _) -> ()
          | _ -> Alcotest.fail (f ^ ": expected numeric field"))
        float_fields;
      ( match Snapshot.member "transcript_md5" s with
        | Some (Snapshot.String md5) ->
          check_int "md5 length" 32 (String.length md5)
        | _ -> Alcotest.fail "transcript_md5: expected String" );
      ( match Snapshot.member "transcript_match" s with
        | Some (Snapshot.Bool true) -> ()
        | _ -> Alcotest.fail "transcript_match must hold on a deterministic run" );
      check "json renders" true
        (String.length (Snapshot.to_json_pretty s) > 0))
    rows;
  match rows with
  | r1 :: r2 :: _ ->
    check "domain counts recorded" true
      (r1.E.Perf_bench.s_domains = 1 && r2.E.Perf_bench.s_domains = 2);
    check_str "identical transcripts across domain counts"
      r1.E.Perf_bench.s_transcript_md5 r2.E.Perf_bench.s_transcript_md5
  | _ -> ()

let () =
  Alcotest.run "obs"
    [ ("metrics",
       [ Alcotest.test_case "counters" `Quick test_counters;
         Alcotest.test_case "gauges" `Quick test_gauges;
         Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
         Alcotest.test_case "histogram observe/quantile" `Quick test_histogram_observe;
         Alcotest.test_case "wire registry bleed" `Quick test_wire_registry_bleed ]);
      ("trace",
       [ Alcotest.test_case "ring buffer" `Quick test_trace_ring;
         Alcotest.test_case "labels" `Quick test_trace_labels ]);
      ("snapshot",
       [ Alcotest.test_case "json rendering" `Quick test_json_rendering;
         Alcotest.test_case "of_metrics" `Quick test_snapshot_of_metrics;
         Alcotest.test_case "of_trace" `Quick test_snapshot_of_trace;
         Alcotest.test_case "percentile" `Quick test_percentile ]);
      ("end-to-end",
       [ Alcotest.test_case "speaker instruments" `Quick test_speaker_instruments;
         Alcotest.test_case "network snapshot" `Quick test_network_snapshot;
         Alcotest.test_case "session instruments" `Quick test_session_instruments;
         Alcotest.test_case "error observability" `Quick test_error_observability;
         Alcotest.test_case "batch + attr-table counter names" `Quick
           test_batch_attr_counter_names;
         Alcotest.test_case "chaos snapshot names" `Quick
           test_chaos_snapshot_names;
         Alcotest.test_case "pipeline bench schema" `Quick
           test_pipeline_bench_schema;
         Alcotest.test_case "perf bench schema" `Quick
           test_perf_bench_schema;
         Alcotest.test_case "scale bench schema" `Quick
           test_scale_bench_schema;
         Alcotest.test_case "stability bench schema" `Quick
           test_stability_bench_schema;
         Alcotest.test_case "adversary bench schema" `Quick
           test_adversary_bench_schema;
         Alcotest.test_case "sharded bench schema" `Quick
           test_sharded_bench_schema ]) ]
