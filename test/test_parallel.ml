(* Sharded-execution suite: the partitioner, the mailbox protocol, the
   domain pool, and — the point of it all — the determinism oracle.

   The oracle property under test: for a fixed seed and scenario, the
   sharded differential digest (merged transcript MD5 + final-state
   MD5) is byte-identical for every worker-domain count.  The region
   count is part of the scenario (it fixes the partitioned schedule);
   the domain count is pure execution policy.  Golden digests recorded
   at 1 domain live in [golden_sharded.txt]; this suite re-runs every
   scenario at 2 and 4 domains against them, and finishes with a
   4-domain convergence smoke bench whose transcript must match its
   own 1-domain run. *)

module Partition = Dbgp_netsim.Partition
module Mailbox = Dbgp_netsim.Mailbox
module Domain_pool = Dbgp_netsim.Domain_pool
module Shard = Dbgp_netsim.Shard
module Differential = Dbgp_eval.Differential
module Shard_differential = Dbgp_eval.Shard_differential
module Perf_bench = Dbgp_eval.Perf_bench

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------ partition ----------------------------- *)

let line_edges latencies =
  Array.of_list
    (List.mapi (fun i l -> (i + 1, i + 2, l)) latencies)

let test_partition_balance () =
  let p =
    Partition.build ~nodes:[| 1; 2; 3; 4; 5; 6 |]
      ~edges:(line_edges [ 1.0; 1.0; 1.0; 1.0; 1.0 ])
      ~regions:2 ()
  in
  check_int "two regions" 2 (Partition.regions p);
  check_int "balanced: 3 + 3" 3 (Array.length (Partition.members p 0));
  check_int "one cut edge" 1 (Array.length (Partition.cut_edges p));
  Alcotest.(check (float 0.)) "lookahead = cut latency" 1.0 (Partition.lookahead p)

let test_partition_prefers_slow_cut () =
  (* One long-haul edge mid-line: cutting it keeps the lookahead big. *)
  let p =
    Partition.build ~nodes:[| 1; 2; 3; 4; 5; 6 |]
      ~edges:(line_edges [ 1.0; 1.0; 9.0; 1.0; 1.0 ])
      ~regions:2 ()
  in
  check_int "one cut edge" 1 (Array.length (Partition.cut_edges p));
  Alcotest.(check (float 0.)) "the slow edge is the cut" 9.0
    (Partition.lookahead p)

let test_partition_pinned () =
  let p =
    Partition.build
      ~pinned:[ (3, 4) ]
      ~nodes:[| 1; 2; 3; 4; 5; 6 |]
      ~edges:(line_edges [ 1.0; 1.0; 1.0; 1.0; 1.0 ])
      ~regions:2 ()
  in
  check_int "pinned endpoints share a region" (Partition.region_of p 3)
    (Partition.region_of p 4)

let test_partition_islands_whole () =
  (* Two disconnected triangles fit one per region: no cut at all. *)
  let p =
    Partition.build ~nodes:[| 1; 2; 3; 4; 5; 6 |]
      ~edges:
        [| (1, 2, 1.); (2, 3, 1.); (1, 3, 1.);
           (4, 5, 1.); (5, 6, 1.); (4, 6, 1.) |]
      ~regions:2 ()
  in
  check_int "no cut edges" 0 (Array.length (Partition.cut_edges p));
  check "lookahead infinite" true (Partition.lookahead p = infinity);
  check_int "triangle 1 intact" (Partition.region_of p 1)
    (Partition.region_of p 3);
  check_int "triangle 2 intact" (Partition.region_of p 4)
    (Partition.region_of p 6)

let test_partition_deterministic () =
  let build () =
    Partition.build ~nodes:(Array.init 40 (fun i -> i + 1))
      ~edges:(Array.init 39 (fun i -> (i + 1, i + 2, 1.0 +. float_of_int (i mod 3))))
      ~regions:4 ()
  in
  let a = build () and b = build () in
  for n = 1 to 40 do
    check_int "same region both builds" (Partition.region_of a n)
      (Partition.region_of b n)
  done

(* ------------------------------ mailbox ------------------------------- *)

let test_mailbox_order () =
  let mb = Mailbox.create () in
  check "fresh mailbox empty" true (Mailbox.is_empty mb);
  Mailbox.push mb ~time:3.0 "c";
  Mailbox.push mb ~time:1.0 "a";
  Mailbox.push mb ~time:2.0 "b";
  check_int "length" 3 (Mailbox.length mb);
  Alcotest.(check (option (float 0.))) "min_time" (Some 1.0) (Mailbox.min_time mb);
  (match Mailbox.drain mb with
  | [ (3.0, 0, "c"); (1.0, 1, "a"); (2.0, 2, "b") ] -> ()
  | _ -> Alcotest.fail "drain must preserve push order and indices");
  check "drained empty" true (Mailbox.is_empty mb);
  check "min_time of empty" true (Mailbox.min_time mb = None);
  (* Indices keep growing across drains: the consumer's total order
     stays stable over the mailbox's whole lifetime. *)
  Mailbox.push mb ~time:5.0 "d";
  match Mailbox.drain mb with
  | [ (5.0, 3, "d") ] -> ()
  | _ -> Alcotest.fail "push index must survive a drain"

(* ----------------------------- domain pool ---------------------------- *)

let test_pool_map () =
  let pool = Domain_pool.create ~size:3 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  check_int "size" 3 (Domain_pool.size pool);
  let seen = Domain_pool.map pool (fun m -> m * 10) in
  check "map collects by member" true (seen = [| 0; 10; 20 |]);
  (* The pool is persistent: rounds can repeat. *)
  let again = Domain_pool.map pool (fun m -> m + 1) in
  check "second round" true (again = [| 1; 2; 3 |])

exception Boom of int

let test_pool_exception () =
  let pool = Domain_pool.create ~size:2 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  (match Domain_pool.run pool (fun m -> if m = 1 then raise (Boom m)) with
  | () -> Alcotest.fail "worker exception must propagate"
  | exception Boom 1 -> ());
  (* And the pool survives the failed round. *)
  let ok = Domain_pool.map pool (fun m -> m) in
  check "pool usable after exception" true (ok = [| 0; 1 |])

(* ------------------------- determinism oracle ------------------------- *)

let goldens () =
  let ic = open_in "golden_sharded.txt" in
  let rec go acc =
    match input_line ic with
    | line ->
      (match Differential.of_line line with
      | Some d -> go (d :: acc)
      | None -> Alcotest.fail ("malformed golden line: " ^ line))
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_goldens_match_sharded () =
  let golden = goldens () in
  check_int "one golden per scenario"
    (List.length Shard_differential.scenarios)
    (List.length golden);
  (* Goldens were recorded at 1 domain; reproduce them at 2. *)
  let fresh = Shard_differential.run_all ~domains:2 () in
  List.iter2
    (fun g f ->
      check_str "scenario order" g.Differential.scenario
        f.Differential.scenario;
      check (g.Differential.scenario ^ ": golden fingerprint") true
        (Differential.equal g f))
    golden fresh

let test_oracle_domain_counts () =
  List.iter
    (fun name ->
      let one = Shard_differential.run ~domains:1 name in
      let two = Shard_differential.run ~domains:2 name in
      let four = Shard_differential.run ~domains:4 name in
      check (name ^ ": 1 = 2 domains") true (Differential.equal one two);
      check (name ^ ": 1 = 4 domains") true (Differential.equal one four))
    Shard_differential.scenarios

let test_oracle_seed_sensitivity () =
  let a = Shard_differential.run ~seed:42 "sharded-hub-policy" in
  let b = Shard_differential.run ~seed:43 "sharded-hub-policy" in
  check "digests depend on the workload" false (Differential.equal a b)

let test_verify_helper () =
  let _, _, ok = Shard_differential.verify ~domains:4 "sharded-relay-line" in
  check "verify agrees" true ok

(* --------------------------- smoke benchmark -------------------------- *)

let test_smoke_bench () =
  let rows =
    Perf_bench.domains_suite ~ases:60 ~prefixes:8 ~regions:4 ~domains:[ 1; 4 ]
      ()
  in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Perf_bench.sharded_row) ->
      check "transcript matches 1-domain run" true r.Perf_bench.s_transcript_match;
      check "updates delivered" true (r.Perf_bench.s_updates > 0);
      check "barriers ran" true (r.Perf_bench.s_epochs > 0))
    rows;
  match rows with
  | [ one; four ] ->
    check_int "first row is 1 domain" 1 one.Perf_bench.s_domains;
    check_int "second row capped at 4 regions" 4 four.Perf_bench.s_domains;
    check_str "same schedule, same transcript" one.Perf_bench.s_transcript_md5
      four.Perf_bench.s_transcript_md5
  | _ -> Alcotest.fail "unexpected row count"

let () =
  Alcotest.run "parallel"
    [ ( "partition",
        [ Alcotest.test_case "balance" `Quick test_partition_balance;
          Alcotest.test_case "slow cut preferred" `Quick
            test_partition_prefers_slow_cut;
          Alcotest.test_case "pinned edges" `Quick test_partition_pinned;
          Alcotest.test_case "islands placed whole" `Quick
            test_partition_islands_whole;
          Alcotest.test_case "deterministic" `Quick
            test_partition_deterministic ] );
      ( "mailbox",
        [ Alcotest.test_case "push/drain order" `Quick test_mailbox_order ] );
      ( "domain-pool",
        [ Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception ] );
      ( "oracle",
        [ Alcotest.test_case "golden fingerprints (2 domains)" `Quick
            test_goldens_match_sharded;
          Alcotest.test_case "1 = 2 = 4 domains" `Slow
            test_oracle_domain_counts;
          Alcotest.test_case "seed sensitivity" `Quick
            test_oracle_seed_sensitivity;
          Alcotest.test_case "verify helper" `Quick test_verify_helper ] );
      ( "smoke-bench",
        [ Alcotest.test_case "4-domain convergence" `Slow test_smoke_bench ] )
    ]
