(* Hot-path correctness suite: the properties the allocation work must
   not break.

   - the heap-backed {!Dbgp_netsim.Event_queue} dequeues exactly like a
     Map-based reference model over randomized interleavings, including
     same-time FIFO ties and events scheduled mid-run;
   - hash-consed interning makes structural equality physical, and the
     tables survive {!Dbgp_core.Speaker.remove_neighbor};
   - the receive-side decode memo stays bounded under fuzz-grade input
     and never memoizes damaged wires;
   - the encode cache serves byte-identical (and physically shared)
     wires;
   - wire-faithful delivery ({!Dbgp_netsim.Network.set_wire_delivery})
     converges to the same message/update/event counts as in-memory
     delivery. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Codec = Dbgp_core.Codec
module Ia = Dbgp_core.Ia
module Peer = Dbgp_core.Peer
module Event_queue = Dbgp_netsim.Event_queue
module Policy = Dbgp_bgp.Policy
module E = Dbgp_eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------- event queue vs reference model ------------------- *)

(* Deterministic splitmix-style PRNG so the 10k interleavings are
   reproducible without depending on qcheck state. *)
let prng seed =
  let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
  fun bound ->
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state mod bound

(* Reference model: a Map keyed by (time, seq) — the documented dequeue
   order.  Both sides schedule the same events (roots up front, children
   from inside executing events, by the same deterministic rule), so the
   execution orders match iff the heap pops in (time, seq) order with
   FIFO ties. *)
module Ref_model = struct
  module M = Map.Make (struct
    type t = float * int

    let compare (t1, s1) (t2, s2) =
      match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
  end)

  type t = { mutable pending : int M.t; mutable seq : int }

  let create () = { pending = M.empty; seq = 0 }

  let schedule m ~time id =
    m.pending <- M.add (time, m.seq) id m.pending;
    m.seq <- m.seq + 1

  (* Runs to exhaustion; [child] is consulted on every pop with the
     popped id and its time, returning children to schedule. *)
  let run m ~child =
    let order = ref [] in
    let rec loop () =
      match M.min_binding_opt m.pending with
      | None -> ()
      | Some ((time, seq), id) ->
        m.pending <- M.remove (time, seq) m.pending;
        order := id :: !order;
        List.iter (fun (dt, cid) -> schedule m ~time:(time +. dt) cid)
          (child ~id ~time);
        loop ()
    in
    loop ();
    List.rev !order
end

(* One randomized interleaving: [n] root events over a coarse time grid
   (collisions are the point — same-time events must pop FIFO), where
   some events schedule children mid-run, possibly at zero delay (a
   same-time tie created while that very timestamp is being drained). *)
let one_interleaving seed =
  let rand = prng seed in
  let n = 3 + rand 10 in
  let child_rule ~id ~time:_ =
    (* Depth is encoded in the id: roots are < 1000, children ≥ 1000.
       One generation of children keeps the model finite. *)
    if id < 1000 && (id + seed) mod 3 = 0 then
      [ (float_of_int ((id + seed) mod 4) /. 2., 1000 + id) ]
    else []
  in
  (* Real queue. *)
  let q = Event_queue.create () in
  let order_real = ref [] in
  let rec fire id () =
    order_real := id :: !order_real;
    List.iter
      (fun (dt, cid) -> Event_queue.schedule q ~delay:dt (fire cid))
      (child_rule ~id ~time:(Event_queue.now q))
  in
  let times = Array.init n (fun _ -> float_of_int (rand 5) /. 2.) in
  Array.iteri (fun i t -> Event_queue.schedule_at q ~time:t (fire i)) times;
  let executed = Event_queue.run q in
  (* Reference model, same roots, same child rule. *)
  let m = Ref_model.create () in
  Array.iteri (fun i t -> Ref_model.schedule m ~time:t i) times;
  let order_model = Ref_model.run m ~child:child_rule in
  let order_real = List.rev !order_real in
  if order_real <> order_model then
    Alcotest.failf "seed %d: heap order %s <> model order %s" seed
      (String.concat "," (List.map string_of_int order_real))
      (String.concat "," (List.map string_of_int order_model));
  check_int "executed count" (List.length order_model) executed

let test_heap_matches_reference_model () =
  for seed = 1 to 10_000 do
    one_interleaving seed
  done

let test_budget_exhaustion_signal () =
  let q = Event_queue.create () in
  for i = 1 to 5 do
    Event_queue.schedule q ~delay:(float_of_int i) ignore
  done;
  check_int "bounded run executes the budget" 2
    (Event_queue.run ~max_events:2 q);
  check "budget exhausted reported" true (Event_queue.budget_exhausted q);
  check_int "queue kept the remainder" 3 (Event_queue.pending q);
  check_int "second run drains" 3 (Event_queue.run q);
  check "drained run clears the flag" false (Event_queue.budget_exhausted q);
  (* End to end through Network/Harness: a too-small budget is surfaced,
     the unbounded control is not. *)
  let probe = E.Stress.run_budget_probe ~ases:12 ~budget:5 () in
  check "probe surfaces exhaustion" true probe.E.Stress.budget_exhausted;
  check "probe ran exactly the budget" true (probe.E.Stress.events_run <= 5)

(* ----------------------------- interning ----------------------------- *)

let fresh_path n =
  (* Rebuilt from scratch each call: structurally equal, physically new. *)
  List.init n (fun i -> Path_elem.as_ (Asn.of_int (100 + i)))

let test_intern_structural_implies_physical () =
  let a = Intern.path_vector (fresh_path 6) in
  let b = Intern.path_vector (fresh_path 6) in
  check "interned vectors share storage" true (a == b);
  let e1 = Intern.path_elem (Path_elem.as_ (Asn.of_int 7)) in
  let e2 = Intern.path_elem (Path_elem.as_ (Asn.of_int 7)) in
  check "interned elements share storage" true (e1 == e2);
  (* Tail sharing: prepending onto an interned vector interns only the
     new cell. *)
  let longer = Intern.path_vector (Path_elem.as_ (Asn.of_int 1) :: a) in
  check "tail shared physically" true (List.tl longer == a);
  (* Decoding the same wire twice yields physically shared vectors. *)
  let ia =
    Ia.originate ~prefix:(Prefix.of_string "99.1.0.0/24")
      ~origin_asn:(Asn.of_int 1) ~next_hop:(Ipv4.of_octets 10 0 0 1) ()
  in
  let wire = Codec.encode ia in
  let d1 = Codec.decode wire and d2 = Codec.decode wire in
  check "decoded path vectors interned" true
    (d1.Ia.path_vector == d2.Ia.path_vector)

let test_intern_survives_remove_neighbor () =
  let mk n =
    Speaker.create
      (Speaker.config ~passthrough:true ~asn:(Asn.of_int n)
         ~addr:(Ipv4.of_octets 10 0 0 n) ())
  in
  let s = mk 5 in
  let p1 = Peer.make ~asn:(Asn.of_int 1) ~addr:(Ipv4.of_octets 10 0 0 1) in
  let announce () =
    let ia =
      Ia.originate ~prefix:(Prefix.of_string "99.2.0.0/24")
        ~origin_asn:(Asn.of_int 1) ~next_hop:(Ipv4.of_octets 10 0 0 1) ()
    in
    Codec.decode (Codec.encode ia)
  in
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Policy.To_customer p1);
  ignore (Speaker.receive s ~from:p1 (Speaker.Announce (announce ())));
  let before =
    match Speaker.best s (Prefix.of_string "99.2.0.0/24") with
    | Some c -> c.Speaker.candidate.Dbgp_core.Decision_module.ia.Ia.path_vector
    | None -> Alcotest.fail "route installed"
  in
  ignore (Speaker.remove_neighbor s p1);
  check "route gone after removal" true
    (Speaker.best s (Prefix.of_string "99.2.0.0/24") = None);
  (* Re-add and re-learn: the global intern tables were untouched by the
     teardown, so the re-learned route shares the same physical path. *)
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Policy.To_customer p1);
  ignore (Speaker.receive s ~from:p1 (Speaker.Announce (announce ())));
  ( match Speaker.best s (Prefix.of_string "99.2.0.0/24") with
    | Some c ->
      check "re-learned path physically equal to pre-removal path" true
        (c.Speaker.candidate.Dbgp_core.Decision_module.ia.Ia.path_vector
         == before)
    | None -> Alcotest.fail "route re-installed" )

(* --------------------------- decode memo ----------------------------- *)

let test_decode_memo_bounded_under_fuzz () =
  Codec.decode_memo_reset ();
  let rand = prng 77 in
  let distinct = 4 * Codec.decode_memo_capacity in
  for i = 0 to distinct - 1 do
    let ia =
      Ia.originate
        ~prefix:
          (Prefix.of_string
             (Printf.sprintf "10.%d.%d.0/24" (i / 256 mod 256) (i mod 256)))
        ~origin_asn:(Asn.of_int (1 + (i mod 1000)))
        ~next_hop:(Ipv4.of_octets 10 0 0 1) ()
    in
    let wire = Codec.encode ia in
    (* Half the traffic is damaged: flip a byte or truncate. *)
    let wire =
      match rand 4 with
      | 0 ->
        let b = Bytes.of_string wire in
        let at = rand (Bytes.length b) in
        Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor (1 + rand 255)));
        Bytes.to_string b
      | 1 -> String.sub wire 0 (rand (String.length wire))
      | _ -> wire
    in
    ignore (Codec.decode_robust wire)
  done;
  check "memo residency bounded by capacity" true
    (Codec.decode_memo_residency () <= Codec.decode_memo_capacity)

let test_decode_memo_never_caches_damage () =
  Codec.decode_memo_reset ();
  let ia =
    Ia.originate ~prefix:(Prefix.of_string "99.3.0.0/24")
      ~origin_asn:(Asn.of_int 3) ~next_hop:(Ipv4.of_octets 10 0 0 3) ()
  in
  let wire = Codec.encode ia in
  let truncated = String.sub wire 0 (String.length wire - 2) in
  let outcome () =
    match Codec.decode_robust truncated with
    | Ok (_, []) -> "clean"
    | Ok (_, _ :: _) -> "salvaged"
    | Error _ -> "error"
  in
  let first = outcome () in
  check "damaged wire is not clean" true (first <> "clean");
  (* A memoized damaged wire would come back [Ok (ia, [])] — "clean" —
     on the second decode and drop the error accounting. *)
  Alcotest.(check string) "replay reports the damage again" first (outcome ())

(* --------------------------- encode cache ---------------------------- *)

let test_encode_cache_correct () =
  let ia =
    Ia.originate ~prefix:(Prefix.of_string "99.4.0.0/24")
      ~origin_asn:(Asn.of_int 4) ~next_hop:(Ipv4.of_octets 10 0 0 4) ()
  in
  let raw = Codec.encode ia in
  let c1 = Codec.encode_cached ia in
  let c2 = Codec.encode_cached ia in
  Alcotest.(check string) "cached bytes identical to raw encode" raw c1;
  check "repeat encode served from cache (physically shared)" true (c1 == c2);
  check "size agrees" true (Codec.size ia = String.length raw)

(* ----------------------- wire-delivery equivalence -------------------- *)

let test_wire_delivery_equivalent () =
  let m = E.Perf_bench.run ~ases:40 ~prefixes:8 () in
  let w = E.Perf_bench.run ~ases:40 ~prefixes:8 ~wire:true () in
  check_int "same messages" m.E.Perf_bench.messages w.E.Perf_bench.messages;
  check_int "same updates" m.E.Perf_bench.updates w.E.Perf_bench.updates;
  check_int "same events" m.E.Perf_bench.events w.E.Perf_bench.events;
  check "wire mode exercised the decode memo" true
    (w.E.Perf_bench.dec_hits > 0)

let () =
  Alcotest.run "perf"
    [ ("event-queue",
       [ Alcotest.test_case "heap = Map reference model (10k interleavings)"
           `Quick test_heap_matches_reference_model;
         Alcotest.test_case "budget exhaustion surfaced" `Quick
           test_budget_exhaustion_signal ]);
      ("interning",
       [ Alcotest.test_case "structural implies physical" `Quick
           test_intern_structural_implies_physical;
         Alcotest.test_case "survives remove_neighbor" `Quick
           test_intern_survives_remove_neighbor ]);
      ("wire-caches",
       [ Alcotest.test_case "decode memo bounded under fuzz" `Quick
           test_decode_memo_bounded_under_fuzz;
         Alcotest.test_case "decode memo never caches damage" `Quick
           test_decode_memo_never_caches_damage;
         Alcotest.test_case "encode cache correct" `Quick
           test_encode_cache_correct ]);
      ("wire-delivery",
       [ Alcotest.test_case "equivalent to in-memory delivery" `Quick
           test_wire_delivery_equivalent ]) ]
