(* The staged RIB pipeline: stage-module unit tests (Adj-RIB-In,
   Loc-RIB, Adj-RIB-Out peer groups + export cache, the dirty-prefix
   scheduler), speaker-level batched ingestion, and teardown
   cleanliness ([remove_neighbor] / [Network.unlink] leaving no state
   behind, asserted through [Invariants.peer_clean]). *)

open Dbgp_types
module Ia = Dbgp_core.Ia
module Filters = Dbgp_core.Filters
module Adj_rib_in = Dbgp_core.Adj_rib_in
module Loc_rib = Dbgp_core.Loc_rib
module Adj_rib_out = Dbgp_core.Adj_rib_out
module Pipeline = Dbgp_core.Pipeline
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Policy = Dbgp_bgp.Policy
module Damping = Dbgp_bgp.Flap_damping
module Metrics = Dbgp_obs.Metrics
module Network = Dbgp_netsim.Network
module Event_queue = Dbgp_netsim.Event_queue
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Invariants = Dbgp_eval.Invariants
module Harness = Dbgp_eval.Harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let peer n = Peer.make ~asn:(asn n) ~addr:(Ipv4.of_octets 10 0 0 n)

let base_ia ?(prefix = "99.0.0.0/24") ?(origin = 1) () =
  Ia.originate ~prefix:(pfx prefix) ~origin_asn:(asn origin)
    ~next_hop:(Ipv4.of_octets 10 0 0 origin) ()

let counter_of s name =
  match Metrics.find_counter (Speaker.metrics s) name with
  | Some c -> Metrics.count c
  | None -> 0

(* ------------------------- Adj-RIB-In ------------------------- *)

let test_adj_rib_in_stale () =
  let db = Adj_rib_in.create () in
  let p1 = peer 1 and p2 = peer 2 in
  Adj_rib_in.set db ~peer:p1 (pfx "1.0.0.0/8") "a";
  Adj_rib_in.set db ~peer:p1 (pfx "2.0.0.0/8") "b";
  Adj_rib_in.set db ~peer:p2 (pfx "1.0.0.0/8") "c";
  check_int "mark_stale returns set size" 2 (Adj_rib_in.mark_stale db ~peer:p1);
  check "marked" true (Adj_rib_in.is_stale db ~peer:p1 (pfx "1.0.0.0/8"));
  check "other peer untouched" false
    (Adj_rib_in.is_stale db ~peer:p2 (pfx "1.0.0.0/8"));
  Adj_rib_in.clear_stale db ~peer:p1 (pfx "1.0.0.0/8");
  check_int "one left" 1 (Adj_rib_in.stale_count db);
  let taken = Adj_rib_in.take_stale db ~peer:p1 in
  check_int "take drains" 1 (Prefix.Set.cardinal taken);
  check_int "nothing stale after take" 0 (Adj_rib_in.stale_count db);
  check_int "routeless peer marks nothing" 0
    (Adj_rib_in.mark_stale db ~peer:(peer 9))

let test_adj_rib_in_drop_clears_stale () =
  let db = Adj_rib_in.create () in
  let p1 = peer 1 in
  Adj_rib_in.set db ~peer:p1 (pfx "2.0.0.0/8") "b";
  Adj_rib_in.set db ~peer:p1 (pfx "1.0.0.0/8") "a";
  ignore (Adj_rib_in.mark_stale db ~peer:p1);
  let affected = Adj_rib_in.drop_peer db ~peer:p1 in
  check "affected ascending" true
    (affected = [ pfx "1.0.0.0/8"; pfx "2.0.0.0/8" ]);
  check_int "stale erased with routes" 0 (Adj_rib_in.stale_count db);
  check "no routes left" false (Adj_rib_in.has_routes db ~peer:p1)

(* ------------------------- Loc-RIB ------------------------- *)

let test_loc_rib_lpm_fib () =
  (* Routes are (label, next hop) pairs; the FIB view is the projection
     supplied at create. *)
  let loc = Loc_rib.create ~next_hop:snd () in
  Loc_rib.set loc (pfx "10.0.0.0/8") ("wide", Some (ip "10.0.0.1"));
  Loc_rib.set loc (pfx "10.1.0.0/16") ("narrow", Some (ip "10.0.0.2"));
  check "lpm" true
    (match Loc_rib.lookup loc (ip "10.1.2.3") with
     | Some (p, ("narrow", _)) -> Prefix.equal p (pfx "10.1.0.0/16")
     | _ -> false);
  check "fib follows lpm" true
    (Loc_rib.next_hop loc (ip "10.1.2.3") = Some (ip "10.0.0.2"));
  check_int "cardinal" 2 (Loc_rib.cardinal loc);
  Loc_rib.remove loc (pfx "10.1.0.0/16");
  check "fallback" true
    (match Loc_rib.lookup loc (ip "10.1.2.3") with
     | Some (p, ("wide", _)) -> Prefix.equal p (pfx "10.0.0.0/8")
     | _ -> false);
  check "fib fallback" true
    (Loc_rib.next_hop loc (ip "10.1.2.3") = Some (ip "10.0.0.1"));
  (* A locally originated route (no next hop) is selectable but not
     forwardable. *)
  Loc_rib.set loc (pfx "10.0.0.0/8") ("local", None);
  check "still selected" true
    (match Loc_rib.find loc (pfx "10.0.0.0/8") with
     | Some ("local", _) -> true
     | _ -> false);
  check "absent from fib" true (Loc_rib.next_hop loc (ip "10.1.2.3") = None)

(* ------------------ dirty-prefix scheduler ------------------ *)

let test_pipeline_coalescing () =
  let obs = Metrics.create () in
  let sched = Pipeline.create obs in
  let count name = Metrics.count (Metrics.counter obs name) in
  Pipeline.mark sched (pfx "2.0.0.0/8");
  Pipeline.mark sched (pfx "1.0.0.0/8");
  Pipeline.mark sched (pfx "2.0.0.0/8");
  Pipeline.mark sched (pfx "2.0.0.0/8");
  check_int "coalesced to two" 2 (Pipeline.pending sched);
  check_int "marks counted" 4 (count "pipeline.dirty_marks");
  check_int "two runs saved" 2 (count "pipeline.runs_saved");
  let out = Pipeline.drain sched ~f:(fun p -> [ Prefix.to_string p ]) in
  check "ascending drain order" true (out = [ "1.0.0.0/8"; "2.0.0.0/8" ]);
  check_int "drained" 0 (Pipeline.pending sched);
  check_int "one nonempty drain" 1 (count "pipeline.drains");
  ignore (Pipeline.drain sched ~f:(fun _ -> []));
  check_int "empty drain not counted" 1 (count "pipeline.drains")

let test_pipeline_remark_during_drain () =
  let obs = Metrics.create () in
  let sched = Pipeline.create obs in
  Pipeline.mark sched (pfx "1.0.0.0/8");
  let out =
    Pipeline.drain sched ~f:(fun p ->
        (* A prefix dirtied by the drain itself lands in the NEXT drain,
           not this one — no livelock. *)
        Pipeline.mark sched (pfx "2.0.0.0/8");
        [ Prefix.to_string p ])
  in
  check "only first prefix this drain" true (out = [ "1.0.0.0/8" ]);
  check_int "re-mark pending" 1 (Pipeline.pending sched)

(* ------------- peer groups + export cache ------------- *)

let key rel =
  { Adj_rib_out.relationship = rel;
    dbgp_capable = true;
    same_island = false;
    export = Filters.accept }

let test_groups_membership () =
  let out = Adj_rib_out.create () in
  let g1 = Adj_rib_out.join out ~peer:(peer 1) (key Policy.To_customer) in
  let g2 = Adj_rib_out.join out ~peer:(peer 2) (key Policy.To_customer) in
  let g3 = Adj_rib_out.join out ~peer:(peer 3) (key Policy.To_peer) in
  check_int "same egress identity shares a group" g1 g2;
  check "different relationship splits" true (g3 <> g1);
  check_int "two groups" 2 (Adj_rib_out.group_count out);
  (* Export filters compare physically: an identical-behaviour closure is
     still a different group. *)
  let f : Filters.t = fun ia -> Some ia in
  let g4 =
    Adj_rib_out.join out ~peer:(peer 4)
      { (key Policy.To_customer) with Adj_rib_out.export = f }
  in
  check "fresh closure, fresh group" true (g4 <> g1);
  check_int "members" 2 (List.length (Adj_rib_out.group_members out g1));
  Adj_rib_out.leave out ~peer:(peer 4);
  check_int "empty group dropped" 2 (Adj_rib_out.group_count out);
  check "membership gone" true (Adj_rib_out.group_of out ~peer:(peer 4) = None)

let test_export_cache_scoped_eviction () =
  let out = Adj_rib_out.create () in
  let g1 = Adj_rib_out.join out ~peer:(peer 1) (key Policy.To_customer) in
  let g2 = Adj_rib_out.join out ~peer:(peer 2) (key Policy.To_peer) in
  let src = base_ia () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    Some src
  in
  let run g =
    Adj_rib_out.egress out ~group:(Some g) ~prefix:src.Ia.prefix ~src ~compute
  in
  check "first call misses" true (snd (run g1) = false);
  check "second call hits" true (snd (run g1) = true);
  check "other group misses independently" true (snd (run g2) = false);
  check_int "computed once per group" 2 !computes;
  (* Peer 1 changes its export filter: it moves group, and only its
     DEPARTED group's cache entries are evicted. *)
  let f : Filters.t = fun ia -> Some ia in
  let g1' =
    Adj_rib_out.join out ~peer:(peer 1)
      { (key Policy.To_customer) with Adj_rib_out.export = f }
  in
  check "moved group" true (g1' <> g1);
  check "departed group's entry evicted" true (snd (run g1) = false);
  check "unrelated group's entry survives" true (snd (run g2) = true);
  (* A changed source IA invalidates the entry (no stale fanout). *)
  let src2 = Ia.prepend_as (asn 7) src in
  check "new src misses" true
    (snd
       (Adj_rib_out.egress out ~group:(Some g2) ~prefix:src2.Ia.prefix
          ~src:src2 ~compute)
     = false);
  (* No group (unknown peer) bypasses the cache entirely. *)
  let before = !computes in
  ignore
    (Adj_rib_out.egress out ~group:None ~prefix:src.Ia.prefix ~src ~compute);
  check_int "groupless always computes" (before + 1) !computes

(* Regression: a peer re-joining with a changed key must not evict the
   departed group's cache while that group still has members — only the
   departure that empties the group evicts. *)
let test_join_move_preserves_shared_cache () =
  let out = Adj_rib_out.create () in
  let g1 = Adj_rib_out.join out ~peer:(peer 1) (key Policy.To_customer) in
  let g1b = Adj_rib_out.join out ~peer:(peer 2) (key Policy.To_customer) in
  check_int "peers 1 and 2 share a group" g1 g1b;
  let src = base_ia () in
  let run g =
    Adj_rib_out.egress out ~group:(Some g) ~prefix:src.Ia.prefix ~src
      ~compute:(fun () -> Some src)
  in
  check "warmed" true (snd (run g1) = false && snd (run g1) = true);
  (* Peer 1 re-adds with a private export filter: it moves to a fresh
     group, but peer 2 is still using the old one. *)
  let f : Filters.t = fun ia -> Some ia in
  let g1' =
    Adj_rib_out.join out ~peer:(peer 1)
      { (key Policy.To_customer) with Adj_rib_out.export = f }
  in
  check "moved to a fresh group" true (g1' <> g1);
  check "peer 2 still in the old group" true
    (Adj_rib_out.group_of out ~peer:(peer 2) = Some g1);
  check "survivor's cached egress intact" true (snd (run g1) = true);
  (* Once peer 2 leaves too, the now-empty group's entries do go. *)
  Adj_rib_out.leave out ~peer:(peer 2);
  check "emptied group evicted" true (snd (run g1) = false)

(* Speaker-level: same-group neighbors receive structurally identical
   IAs, computed once and fanned out. *)
let test_speaker_export_fanout () =
  let s =
    Speaker.create
      (Speaker.config ~asn:(asn 100) ~addr:(Ipv4.of_octets 10 0 0 100) ())
  in
  List.iter
    (fun n ->
      Speaker.add_neighbor s
        (Speaker.neighbor ~relationship:Policy.To_customer (peer n)))
    [ 1; 2; 3 ];
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Policy.To_peer (peer 4));
  check "customers share a group" true
    (Speaker.export_group_of s (peer 1) = Speaker.export_group_of s (peer 2)
    && Speaker.export_group_of s (peer 2) = Speaker.export_group_of s (peer 3));
  check "peer relationship splits" true
    (Speaker.export_group_of s (peer 4) <> Speaker.export_group_of s (peer 1));
  check_int "two groups" 2 (Speaker.export_group_count s);
  let out = Speaker.originate s (base_ia ~origin:100 ()) in
  (* Local origination exports everywhere (valley-free allows it). *)
  check_int "all four neighbors served" 4 (List.length out);
  let ia_for n =
    match List.assoc_opt (peer n) out with
    | Some (Speaker.Announce ia) -> ia
    | _ -> Alcotest.fail "expected an announcement"
  in
  check "same-group IAs structurally identical" true
    (Ia.equal (ia_for 1) (ia_for 2) && Ia.equal (ia_for 2) (ia_for 3));
  (* One egress computation per group, fanned out to the members. *)
  check_int "two cache hits" 2 (counter_of s "pipeline.export_cache.hits");
  check_int "one miss per group" 2 (counter_of s "pipeline.export_cache.misses");
  (* Re-binding one customer with a private export filter moves it out of
     the group without disturbing the others' membership. *)
  let f : Filters.t = fun ia -> Some ia in
  Speaker.add_neighbor s
    (Speaker.neighbor ~export:f ~relationship:Policy.To_customer (peer 3));
  check "filtered customer left the group" true
    (Speaker.export_group_of s (peer 3) <> Speaker.export_group_of s (peer 1));
  check_int "three groups now" 3 (Speaker.export_group_count s);
  check "remaining pair intact" true
    (Speaker.export_group_of s (peer 1) = Speaker.export_group_of s (peer 2))

(* ------------------- batched ingestion ------------------- *)

let customers_speaker () =
  let s =
    Speaker.create
      (Speaker.config ~asn:(asn 100) ~addr:(Ipv4.of_octets 10 0 0 100) ())
  in
  List.iter
    (fun n ->
      Speaker.add_neighbor s
        (Speaker.neighbor ~relationship:Policy.To_customer (peer n)))
    [ 1; 2; 3 ];
  s

let test_ingest_flush_coalesces () =
  let s = customers_speaker () in
  (* Three announcements for the same prefix arrive within one batch:
     one decision run at the drain, two runs saved. *)
  List.iter
    (fun n ->
      Speaker.ingest s ~from:(peer n)
        (Speaker.Announce (base_ia ~origin:n ())))
    [ 1; 2; 3 ];
  check_int "one dirty prefix" 1 (Speaker.pending s);
  check_int "no decision yet" 0 (counter_of s "decision.runs");
  let out = Speaker.flush s in
  check_int "single decision run" 1 (counter_of s "decision.runs");
  check_int "two runs saved" 2 (counter_of s "pipeline.runs_saved");
  check_int "drained" 0 (Speaker.pending s);
  check "best chosen" true (Speaker.best s (pfx "99.0.0.0/24") <> None);
  check "emitted" true (out <> []);
  (* The equivalent eager replay runs the decision process thrice but
     lands on the same best route. *)
  let e = customers_speaker () in
  List.iter
    (fun n ->
      ignore
        (Speaker.receive e ~from:(peer n)
           (Speaker.Announce (base_ia ~origin:n ()))))
    [ 1; 2; 3 ];
  check_int "eager runs thrice" 3 (counter_of e "decision.runs");
  check "same final best" true
    (match
       ( Speaker.best s (pfx "99.0.0.0/24"),
         Speaker.best e (pfx "99.0.0.0/24") )
     with
    | Some a, Some b ->
      Ia.equal a.Speaker.outgoing b.Speaker.outgoing
      && a.Speaker.candidate.Dbgp_core.Decision_module.from_peer
         = b.Speaker.candidate.Dbgp_core.Decision_module.from_peer
    | _ -> false)

(* ------------------- teardown cleanliness ------------------- *)

let damp_params =
  { Damping.half_life = 1.;
    suppress_threshold = 1500.;
    reuse_threshold = 500.;
    withdraw_penalty = 1000.;
    attr_change_penalty = 500.;
    max_penalty = 4000. }

(* One noisy neighbor leaving fingerprints in every stage: Adj-RIB-In
   routes, Adj-RIB-Out advertisements, stale marks (graceful down) and
   flap-damping memory (one withdraw). *)
let noisy_speaker () =
  let s =
    Speaker.create
      (Speaker.config ~asn:(asn 100) ~addr:(Ipv4.of_octets 10 0 0 100) ())
  in
  Speaker.set_damping s (Some damp_params);
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Policy.To_customer (peer 1));
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Policy.To_customer (peer 2));
  let ia n p = base_ia ~prefix:p ~origin:n () in
  ignore
    (Speaker.receive ~now:0. s ~from:(peer 1)
       (Speaker.Announce (ia 1 "20.0.0.0/24")));
  ignore
    (Speaker.receive ~now:0.1 s ~from:(peer 1)
       (Speaker.Withdraw (pfx "20.0.0.0/24")));
  ignore
    (Speaker.receive ~now:5. s ~from:(peer 1)
       (Speaker.Announce (ia 1 "20.0.0.0/24")));
  ignore
    (Speaker.receive ~now:5. s ~from:(peer 2)
       (Speaker.Announce (ia 2 "21.0.0.0/24")));
  Speaker.peer_down_graceful ~now:6. s (peer 1);
  s

let test_remove_neighbor_clean () =
  let s = noisy_speaker () in
  check "flap state built" true (Speaker.has_flap_state s (peer 1));
  check "stale marks built" true (Speaker.has_stale s (peer 1));
  check "still advertised meanwhile" true (Speaker.has_adj_in s (peer 1));
  let out = Speaker.remove_neighbor ~now:7. s (peer 1) in
  (* The removed peer's route was advertised to peer 2; removal must
     withdraw it there. *)
  check "withdrawal emitted" true
    (List.exists
       (fun (p, m) ->
         Peer.equal p (peer 2) && m = Speaker.Withdraw (pfx "20.0.0.0/24"))
       out);
  check "peer fully erased" true (Invariants.peer_clean s (peer 1) = []);
  check "survivor untouched" true
    (Speaker.best s (pfx "21.0.0.0/24") <> None
    && Speaker.has_neighbor s (peer 2));
  check "removed route gone" true (Speaker.best s (pfx "20.0.0.0/24") = None)

let test_peer_down_keeps_damping () =
  let s = noisy_speaker () in
  ignore (Speaker.peer_down ~now:7. s (peer 1));
  (* Session loss: damping memory deliberately survives — a flapping link
     must not reset its own penalties... *)
  check "flap state retained" true (Speaker.has_flap_state s (peer 1));
  check "routes gone" false (Speaker.has_adj_in s (peer 1));
  check "only the flap orphan remains" true
    (Invariants.peer_clean s (peer 1) = [ Invariants.Orphan_flap (100, 1) ]);
  (* ...and only administrative removal erases it. *)
  ignore (Speaker.remove_neighbor ~now:8. s (peer 1));
  check "clean after removal" true (Invariants.peer_clean s (peer 1) = [])

let test_network_unlink_clean () =
  let net = Network.create () in
  List.iter (fun n -> ignore (Harness.add_as net n)) [ 1; 2; 3 ];
  Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:Policy.To_provider ();
  Network.link net ~a:(asn 2) ~b:(asn 3) ~b_is:Policy.To_customer ();
  Network.originate net (asn 1)
    (Ia.originate ~prefix:(pfx "99.0.0.0/24") ~origin_asn:(asn 1)
       ~next_hop:(Network.speaker_addr (asn 1)) ());
  ignore (Network.run net);
  check "3 learned via 2" true
    (Speaker.best (Network.speaker net (asn 3)) (pfx "99.0.0.0/24") <> None);
  Network.unlink net (asn 2) (asn 3);
  ignore (Network.run net);
  let s2 = Network.speaker net (asn 2) and s3 = Network.speaker net (asn 3) in
  check "both sides clean" true
    (Invariants.peer_clean s2 (Network.peer_of net (asn 3)) = []
    && Invariants.peer_clean s3 (Network.peer_of net (asn 2)) = []);
  check "route gone at 3" true
    (Speaker.best s3 (pfx "99.0.0.0/24") = None);
  check "no orphans network-wide" true
    (Invariants.ok
       (Invariants.check ~prefix:(pfx "99.0.0.0/24") ~dest:(ip "99.0.0.1")
          net));
  check "unlink is permanent" true
    (match Network.recover_link net (asn 2) (asn 3) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ---------------- batched network path ---------------- *)

(* The same seeded topology converged eagerly (MRAI 0) and batched
   (MRAI 2) must agree on every speaker's best route and FIB next hop,
   while the batched run demonstrably coalesces decision work. *)
let test_batched_network_equivalence () =
  let build () =
    let rng = Prng.create 7 in
    let g = Brite.generate rng { Brite.default with Brite.n = 40 } in
    let net = Network.create () in
    for i = 0 to Graph.size g - 1 do
      ignore (Harness.add_as net (i + 1))
    done;
    Graph.fold_edges
      (fun a b view () ->
        let rel =
          match view with
          | Graph.Customer_of_me -> Policy.To_customer
          | Graph.Provider_of_me -> Policy.To_provider
          | Graph.Peer_of_me -> Policy.To_peer
        in
        Network.link net ~a:(asn (a + 1)) ~b:(asn (b + 1)) ~b_is:rel ())
      g ();
    net
  in
  let converge mrai =
    let net = build () in
    Network.set_mrai net mrai;
    for i = 0 to 2 do
      let prefix = pfx (Printf.sprintf "99.%d.0.0/24" i) in
      Network.originate net
        (asn (1 + i))
        (Ia.originate ~prefix ~origin_asn:(asn (1 + i))
           ~next_hop:(Network.speaker_addr (asn (1 + i))) ())
    done;
    ignore (Network.run net);
    net
  in
  let eager = converge 0. and batched = converge 2.0 in
  let state net =
    List.map
      (fun a ->
        let s = Network.speaker net a in
        List.map
          (fun (p, (c : Speaker.chosen)) ->
            ( Prefix.to_string p,
              c.Speaker.candidate.Dbgp_core.Decision_module.from_peer,
              Speaker.next_hop_of s (Prefix.network p) ))
          (Speaker.best_routes s))
      (Network.asns net)
  in
  check "identical best routes and FIB" true (state eager = state batched);
  let total net name = Network.counter_total net name in
  let updates net =
    total net "updates.received" + total net "withdrawals.received"
  in
  check "batched saved runs" true (total batched "pipeline.runs_saved" > 0);
  check_int "eager saved none" 0 (total eager "pipeline.runs_saved");
  check "batched coalesced below run-per-update" true
    (total batched "decision.runs" < updates batched);
  check "batched cache hit" true
    (total batched "pipeline.export_cache.hits" > 0)

(* ---------------- session re-establishment ---------------- *)

let feed_net n =
  let net = Network.create () in
  List.iter (fun i -> ignore (Harness.add_as net i)) [ 1; 2 ];
  Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:Policy.To_provider ();
  for i = 0 to n - 1 do
    Network.originate net (asn 1)
      (Ia.originate
         ~prefix:(pfx (Printf.sprintf "99.%d.0.0/24" i))
         ~origin_asn:(asn 1)
         ~next_hop:(Network.speaker_addr (asn 1)) ())
  done;
  ignore (Network.run net);
  net

let messages net =
  Metrics.count (Metrics.counter (Network.metrics net) "net.messages")

let table_at net a n =
  List.for_all
    (fun i ->
      Speaker.best (Network.speaker net (asn a))
        (pfx (Printf.sprintf "99.%d.0.0/24" i))
      <> None)
    (List.init n Fun.id)

(* The tentpole bugfix: a clean down/up inside the graceful window must
   NOT re-announce the full table — the streamed incremental sync skips
   every route whose confirmed Adj-RIB-Out record already matches. *)
let test_reestablish_incremental () =
  let n = 40 in
  (* Control arm: without graceful restart the bounce re-sends the whole
     table (the legacy storm). *)
  let net = feed_net n in
  Network.fail_link net (asn 1) (asn 2);
  ignore (Network.run net);
  let m0 = messages net in
  Network.recover_link net (asn 1) (asn 2);
  ignore (Network.run net);
  let storm = messages net - m0 in
  check "storm re-sends the table" true (storm >= n);
  (* Fixed arm: graceful down/up, nothing changed meanwhile. *)
  let net = feed_net n in
  Network.set_graceful_restart net (Some 50.);
  Network.fail_link net (asn 1) (asn 2);
  let m0 = messages net in
  let sk0 = Network.counter_total net "sync.skipped" in
  let sent0 = Network.counter_total net "sync.sent" in
  Network.recover_link net (asn 1) (asn 2);
  ignore (Network.run net);
  let resent = messages net - m0 in
  check "incremental sync sends almost nothing" true (resent <= 2);
  check "whole table skipped" true
    (Network.counter_total net "sync.skipped" - sk0 >= n);
  check_int "nothing streamed" sent0 (Network.counter_total net "sync.sent");
  check "table intact at the receiver" true (table_at net 2 n);
  check_int "no stale routes left" 0 (Network.stale_total net)

(* Graceful re-establish under churn: routes that changed while the
   session was down are re-sent exactly once; the rest are retained by
   the End-of-RIB without being flushed or re-sent (no double-send, no
   wrongful flush from the cancelled restart timer). *)
let test_restart_under_churn () =
  let n = 20 and extra = 3 in
  let net = feed_net n in
  Network.set_graceful_restart net (Some 100.);
  let q = Network.queue net in
  Network.fail_link net (asn 1) (asn 2);
  (* New routes appear while the session is down: their announcements
     die on the cut link, demoting the Adj-RIB-Out records. *)
  for i = n to n + extra - 1 do
    Network.originate net (asn 1)
      (Ia.originate
         ~prefix:(pfx (Printf.sprintf "99.%d.0.0/24" i))
         ~origin_asn:(asn 1)
         ~next_hop:(Network.speaker_addr (asn 1)) ())
  done;
  let m0 = messages net in
  let u0 = Network.counter_total net "updates.received" in
  let ret0 = Network.counter_total net "restart.retained" in
  Event_queue.schedule q ~delay:5. (fun () ->
      Network.recover_link net (asn 1) (asn 2));
  ignore (Network.run net);
  (* Exactly the churned slice travels... *)
  check "only changed routes re-sent" true (messages net - m0 <= extra + 1);
  check_int "each delivered exactly once" extra
    (Network.counter_total net "updates.received" - u0);
  (* ...the unchanged table is retained by the End-of-RIB... *)
  check "unchanged routes retained, not re-sent" true
    (Network.counter_total net "restart.retained" - ret0 >= n);
  check "full table present" true (table_at net 2 (n + extra));
  (* ...and the cancelled restart timer never flushes anything, even
     after simulated time passes the original window. *)
  check_int "no stale routes left" 0 (Network.stale_total net)

let () =
  Alcotest.run "pipeline"
    [ ( "adj-rib-in",
        [ Alcotest.test_case "stale marks" `Quick test_adj_rib_in_stale;
          Alcotest.test_case "drop clears stale" `Quick
            test_adj_rib_in_drop_clears_stale ] );
      ( "loc-rib",
        [ Alcotest.test_case "lpm + fib" `Quick test_loc_rib_lpm_fib ] );
      ( "scheduler",
        [ Alcotest.test_case "coalescing" `Quick test_pipeline_coalescing;
          Alcotest.test_case "re-mark during drain" `Quick
            test_pipeline_remark_during_drain ] );
      ( "peer-groups",
        [ Alcotest.test_case "membership" `Quick test_groups_membership;
          Alcotest.test_case "scoped eviction" `Quick
            test_export_cache_scoped_eviction;
          Alcotest.test_case "move keeps survivors' cache" `Quick
            test_join_move_preserves_shared_cache;
          Alcotest.test_case "speaker fanout" `Quick
            test_speaker_export_fanout ] );
      ( "reestablish",
        [ Alcotest.test_case "incremental sync, not a storm" `Quick
            test_reestablish_incremental;
          Alcotest.test_case "restart under churn" `Quick
            test_restart_under_churn ] );
      ( "batching",
        [ Alcotest.test_case "ingest/flush coalesces" `Quick
            test_ingest_flush_coalesces;
          Alcotest.test_case "network equivalence" `Quick
            test_batched_network_equivalence ] );
      ( "teardown",
        [ Alcotest.test_case "remove_neighbor clean" `Quick
            test_remove_neighbor_clean;
          Alcotest.test_case "peer_down keeps damping" `Quick
            test_peer_down_keeps_damping;
          Alcotest.test_case "network unlink clean" `Quick
            test_network_unlink_clean ] ) ]
