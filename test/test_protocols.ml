open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module
module Peer = Dbgp_core.Peer
module Wiser = Dbgp_protocols.Wiser
module Pathlet = Dbgp_protocols.Pathlet
module Scion = Dbgp_protocols.Scion_like
module Bgpsec = Dbgp_protocols.Bgpsec_like
module Miro = Dbgp_protocols.Miro
module Eqbgp = Dbgp_protocols.Eqbgp
module Portal_io = Dbgp_protocols.Portal_io

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let peer n = Peer.make ~asn:(asn n) ~addr:(Ipv4.of_octets 10 0 0 n)

let base_ia () =
  Ia.originate ~prefix:(pfx "99.0.0.0/24") ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") ()

let cand ?(peer_n = 2) ia = { Dm.from_peer = Some (peer peer_n); ia }

(* ------------------------- Wiser ------------------------- *)

let wiser_instance ?(cost = 10) ?(io = Portal_io.null) island portal =
  Wiser.create
    { Wiser.my_island = Island_id.named island; internal_cost = cost;
      portal = ip portal; io }

let test_wiser_contribute_accumulates () =
  let w = wiser_instance ~cost:7 "W" "172.16.0.1" in
  let m = Wiser.decision_module w in
  let ia1 = m.Dm.contribute ~me:(asn 2) (base_ia ()) in
  check "cost set" true (Wiser.cost_of ia1 = Some 7);
  let ia2 = m.Dm.contribute ~me:(asn 3) ia1 in
  check "cost accumulated" true (Wiser.cost_of ia2 = Some 14);
  check "portal attached" true
    (Ia.find_island_descriptor ~island:(Island_id.named "W") ~proto:Wiser.protocol
       ~field:Wiser.field_portal ia1
    = Some (Value.Addr (ip "172.16.0.1")))

let test_wiser_select_lowest_cost () =
  let w = wiser_instance "W" "172.16.0.1" in
  let m = Wiser.decision_module w in
  let with_cost c ia =
    Ia.set_path_descriptor ~owners:[ Wiser.protocol ] ~field:Wiser.field_cost
      (Value.Int c) ia
  in
  let cheap = cand ~peer_n:3 (with_cost 5 (Ia.prepend_as (asn 8) (base_ia ()))) in
  let pricey = cand ~peer_n:2 (with_cost 50 (base_ia ())) in
  check "lowest cost wins over shorter path" true
    (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ pricey; cheap ] = Some cheap);
  (* missing cost ranks below any known cost *)
  let unknown = cand ~peer_n:1 (base_ia ()) in
  check "known cost beats unknown" true
    (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ unknown; pricey ] = Some pricey)

let test_wiser_upstream_portal () =
  let my = Island_id.named "MINE" and theirs = Island_id.named "THEIRS" in
  let ia =
    base_ia ()
    |> Ia.declare_membership ~island:theirs ~members:[ asn 1 ]
    |> Ia.add_island_descriptor ~island:theirs ~proto:Wiser.protocol
         ~field:Wiser.field_portal (Value.Addr (ip "172.16.9.9"))
  in
  check "found" true (Wiser.upstream_portal ~my_island:my ia = Some (ip "172.16.9.9"));
  check "own island skipped" true (Wiser.upstream_portal ~my_island:theirs ia = None)

let test_wiser_cost_exchange () =
  let io, _ = Portal_io.in_memory () in
  (* Two islands: A advertises avg cost 100, B sees those costs raw and
     advertises avg cost 10 itself; after the exchange, B scales A's
     costs by 10/100 = 0.1. *)
  let a = wiser_instance ~io ~cost:100 "A" "172.16.0.1" in
  let b = wiser_instance ~io ~cost:10 "B" "172.16.0.2" in
  let ma = Wiser.decision_module a and mb = Wiser.decision_module b in
  (* A advertises one path with cost 100 (portal descriptor included). *)
  let from_a = ma.Dm.contribute ~me:(asn 1) (base_ia ()) in
  let from_a = Ia.declare_membership ~island:(Island_id.named "A") ~members:[ asn 1 ] from_a in
  (* B imports it (records the observation), then advertises its own. *)
  let imported = Option.get (mb.Dm.import_filter from_a) in
  check "unscaled on first sight" true (Wiser.cost_of imported = Some 100);
  ignore (mb.Dm.contribute ~me:(asn 2) (base_ia ()));
  Wiser.exchange_costs a;
  Wiser.exchange_costs b;
  let f = Wiser.scaling_factor b ~portal:(ip "172.16.0.1") in
  check "factor = my_avg / their_avg" true (abs_float (f -. 0.1) < 1e-9);
  (* Re-importing now scales. *)
  let imported2 = Option.get (mb.Dm.import_filter from_a) in
  check "scaled cost" true (Wiser.cost_of imported2 = Some 10);
  check_int "portals observed" 1 (List.length (Wiser.observed_portals b))

(* ------------------------- Pathlet ------------------------- *)

let test_pathlet_make_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Pathlet.make: empty hop list")
    (fun () -> ignore (Pathlet.make ~fid:1 []));
  Alcotest.check_raises "deliver not last"
    (Invalid_argument "Pathlet.make: Deliver must be last") (fun () ->
      ignore
        (Pathlet.make ~fid:1
           [ Pathlet.Deliver (pfx "1.0.0.0/8"); Pathlet.Router "r" ]))

let test_pathlet_compose () =
  let p1 = Pathlet.make ~fid:1 [ Pathlet.Router "a"; Pathlet.Router "b" ] in
  let p2 = Pathlet.make ~fid:2 [ Pathlet.Router "b"; Pathlet.Deliver (pfx "1.0.0.0/8") ] in
  let c = Pathlet.compose ~fid:9 p1 p2 in
  check "entry" true (Pathlet.entry c = Pathlet.Router "a");
  check "delivers" true (Pathlet.delivers_to c = Some (pfx "1.0.0.0/8"));
  check_int "junction dropped" 3 (List.length c.Pathlet.hops);
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Pathlet.compose: pathlets do not connect") (fun () ->
      ignore (Pathlet.compose ~fid:9 p2 p1))

let test_pathlet_value_roundtrip () =
  let p =
    Pathlet.make ~fid:77
      [ Pathlet.Router "x"; Pathlet.Router "y"; Pathlet.Deliver (pfx "9.9.0.0/16") ]
  in
  check "roundtrip" true (Pathlet.of_value (Pathlet.to_value p) = Some p);
  check "garbage" true (Pathlet.of_value (Value.Int 3) = None)

let test_pathlet_store_routes () =
  let s = Pathlet.Store.create () in
  let dest = pfx "1.0.0.0/8" in
  List.iter (Pathlet.Store.add s)
    [ Pathlet.make ~fid:1 [ Pathlet.Router "a"; Pathlet.Router "b" ];
      Pathlet.make ~fid:2 [ Pathlet.Router "b"; Pathlet.Deliver dest ];
      Pathlet.make ~fid:3 [ Pathlet.Router "a"; Pathlet.Router "c" ];
      Pathlet.make ~fid:4 [ Pathlet.Router "c"; Pathlet.Deliver dest ];
      Pathlet.make ~fid:5 [ Pathlet.Router "a"; Pathlet.Deliver (pfx "2.0.0.0/8") ] ]
  ;
  let routes = Pathlet.Store.routes_to s ~from:"a" ~dest in
  check_int "two routes" 2 (List.length routes);
  check "fid replace" true
    ( Pathlet.Store.add s (Pathlet.make ~fid:1 [ Pathlet.Router "z"; Pathlet.Deliver dest ]);
      Pathlet.Store.size s = 5 )

let test_pathlet_store_no_fid_reuse_loop () =
  let s = Pathlet.Store.create () in
  let dest = pfx "1.0.0.0/8" in
  (* a->b, b->a cycle plus b->deliver: search must terminate. *)
  List.iter (Pathlet.Store.add s)
    [ Pathlet.make ~fid:1 [ Pathlet.Router "a"; Pathlet.Router "b" ];
      Pathlet.make ~fid:2 [ Pathlet.Router "b"; Pathlet.Router "a" ];
      Pathlet.make ~fid:3 [ Pathlet.Router "b"; Pathlet.Deliver dest ] ]
  ;
  let routes = Pathlet.Store.routes_to s ~from:"a" ~dest in
  check_int "one loop-free route" 1 (List.length routes)

let test_pathlet_attach_extract () =
  let isl = Island_id.named "P" in
  let ps = [ Pathlet.make ~fid:1 [ Pathlet.Router "a"; Pathlet.Deliver (pfx "1.0.0.0/8") ] ] in
  let ia = Pathlet.attach ~island:isl ps (base_ia ()) in
  match Pathlet.extract ia with
  | [ (i, got) ] ->
    check "island" true (Island_id.equal i isl);
    check "pathlets" true (got = ps)
  | _ -> Alcotest.fail "expected one island's pathlets"

let test_pathlet_translation () =
  let isl = Island_id.named "P" in
  let tr = Pathlet.translation ~island:isl ~origin_asn:(asn 7) ~next_hop:(ip "10.0.0.7") in
  let ps =
    [ Pathlet.make ~fid:1 [ Pathlet.Router "a"; Pathlet.Deliver (pfx "3.0.0.0/8") ] ]
  in
  let ia = Pathlet.attach ~island:isl ps (base_ia ()) in
  check "ingress harvests" true (tr.Dbgp_core.Translation.ingress ia = Some ps);
  check "ingress empty is none" true
    (tr.Dbgp_core.Translation.ingress (base_ia ()) = None);
  ( match tr.Dbgp_core.Translation.redistribute ps with
    | Some r -> check "redistributes deliverable prefix" true (Prefix.equal r.Ia.prefix (pfx "3.0.0.0/8"))
    | None -> Alcotest.fail "expected redistribution" );
  let out = tr.Dbgp_core.Translation.egress ps (base_ia ()) in
  check "egress attaches" true (Pathlet.extract out <> [])

(* ------------------------- Scion ------------------------- *)

let test_scion_attach_extract_choose () =
  let isl = Island_id.named "S" in
  let paths = [ [ "r1"; "r2"; "r3" ]; [ "r1"; "r3" ] ] in
  let ia = Scion.attach ~island:isl paths (base_ia ()) in
  check "extract" true (Scion.extract ~island:isl ia = paths);
  check "extract other island empty" true (Scion.extract ~island:(Island_id.named "T") ia = []);
  check "choose shortest" true (Scion.choose_path paths = Some [ "r1"; "r3" ]);
  check "choose empty" true (Scion.choose_path [] = None);
  check_int "extract_all" 1 (List.length (Scion.extract_all ia))

let test_scion_module_contributes () =
  let isl = Island_id.named "S" in
  let m = Scion.decision_module ~island:isl ~exported:(fun () -> [ [ "a" ] ]) in
  let out = m.Dm.contribute ~me:(asn 2) (base_ia ()) in
  check "paths attached" true (Scion.extract ~island:isl out = [ [ "a" ] ]);
  let m0 = Scion.decision_module ~island:isl ~exported:(fun () -> []) in
  check "no paths, untouched" true
    (Scion.extract ~island:isl (m0.Dm.contribute ~me:(asn 2) (base_ia ())) = [])

(* ------------------------- Bgpsec ------------------------- *)

let keys = [ (1, "k1"); (2, "k2"); (3, "k3") ]
let pki a = List.assoc_opt (Asn.to_int a) keys

let test_bgpsec_mac_deterministic () =
  let m1 = Bgpsec.mac ~secret:"s" ~prefix:(pfx "1.0.0.0/8") ~signer:(asn 1) ~path:[] in
  let m2 = Bgpsec.mac ~secret:"s" ~prefix:(pfx "1.0.0.0/8") ~signer:(asn 1) ~path:[] in
  check "deterministic" true (String.equal m1 m2);
  let m3 = Bgpsec.mac ~secret:"other" ~prefix:(pfx "1.0.0.0/8") ~signer:(asn 1) ~path:[] in
  check "keyed" false (String.equal m1 m3);
  check_int "128-bit hex" 32 (String.length m1)

let full_chain () =
  let cfg2 = { Bgpsec.me = asn 2; secret = "k2"; pki; require_full = false; authorized = None } in
  let cfg3 = { Bgpsec.me = asn 3; secret = "k3"; pki; require_full = false; authorized = None } in
  let m2 = Bgpsec.decision_module cfg2 and m3 = Bgpsec.decision_module cfg3 in
  base_ia ()
  |> Bgpsec.sign_origin ~secret:"k1" ~me:(asn 1)
  |> m2.Dm.contribute ~me:(asn 2)
  |> Ia.prepend_as (asn 2)
  |> m3.Dm.contribute ~me:(asn 3)
  |> Ia.prepend_as (asn 3)

let test_bgpsec_verify_full () =
  let ia = full_chain () in
  check_int "three attestations" 3 (List.length (Bgpsec.attestations ia));
  check "full chain verifies" true (Bgpsec.verify ~pki ia = Bgpsec.Full)

let test_bgpsec_gap_is_partial () =
  (* AS 2 does not participate: no attestation from it. *)
  let ia =
    base_ia ()
    |> Bgpsec.sign_origin ~secret:"k1" ~me:(asn 1)
    |> Ia.prepend_as (asn 2)
  in
  match Bgpsec.verify ~pki ia with
  | Bgpsec.Partial missing -> check "as2 missing" true (missing = [ asn 2 ])
  | _ -> Alcotest.fail "expected partial"

let test_bgpsec_tamper_broken () =
  let ia = full_chain () in
  (* Tamper with the path: swap an AS. *)
  let tampered = { ia with Ia.path_vector = List.rev ia.Ia.path_vector } in
  ( match Bgpsec.verify ~pki tampered with
    | Bgpsec.Broken _ -> ()
    | _ -> Alcotest.fail "expected broken chain" );
  (* Tamper with the prefix. *)
  let repre = { ia with Ia.prefix = pfx "66.0.0.0/8" } in
  match Bgpsec.verify ~pki repre with
  | Bgpsec.Broken _ -> ()
  | _ -> Alcotest.fail "expected broken on prefix change"

let test_bgpsec_module_filters () =
  let cfg = { Bgpsec.me = asn 9; secret = "k9"; pki; require_full = true; authorized = None } in
  let m = Bgpsec.decision_module cfg in
  let good = full_chain () in
  check "full accepted" true (m.Dm.import_filter good <> None);
  let gap =
    base_ia () |> Bgpsec.sign_origin ~secret:"k1" ~me:(asn 1) |> Ia.prepend_as (asn 2)
  in
  check "partial rejected when require_full" true (m.Dm.import_filter gap = None);
  let lax = Bgpsec.decision_module { cfg with Bgpsec.require_full = false } in
  check "partial accepted when lax" true (lax.Dm.import_filter gap <> None);
  let forged =
    { good with Ia.prefix = pfx "66.0.0.0/8" }
  in
  check "broken always rejected" true (lax.Dm.import_filter forged = None)

let test_bgpsec_select_prefers_attested () =
  let cfg = { Bgpsec.me = asn 9; secret = "k9"; pki; require_full = false; authorized = None } in
  let m = Bgpsec.decision_module cfg in
  let attested = cand ~peer_n:2 (full_chain ()) in
  let longer_unattested = cand ~peer_n:1 (base_ia ()) in
  check "attested wins though longer" true
    (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ longer_unattested; attested ]
    = Some attested)

let test_bgpsec_drop_filter () =
  let ia = full_chain () in
  match Bgpsec.drop_attestations ia with
  | Some ia' -> check "attestations gone" true (Bgpsec.attestations ia' = [])
  | None -> Alcotest.fail "filter should keep the IA"

(* ------------------------- Miro ------------------------- *)

let miro_inst () =
  Miro.create
    { Miro.my_island = Island_id.named "M";
      portal = ip "172.16.5.5";
      offers =
        [ { Miro.dest = pfx "8.0.0.0/8"; via = "fast"; price = 20; tunnel_endpoint = ip "172.16.5.6" };
          { Miro.dest = pfx "8.0.0.0/8"; via = "cheap"; price = 5; tunnel_endpoint = ip "172.16.5.7" } ] }

let test_miro_advertise_discover () =
  let m = miro_inst () in
  let ia = Miro.advertise m (base_ia ()) in
  match Miro.discover ia with
  | [ d ] ->
    check "portal addr" true (Ipv4.equal d.Miro.portal_addr (ip "172.16.5.5"));
    check_int "paths count" 2 d.Miro.n_paths
  | _ -> Alcotest.fail "expected one discovery"

let test_miro_serve_budget () =
  let m = miro_inst () in
  ( match Miro.serve m (Value.Pair (Value.Pfx (pfx "8.0.0.0/8"), Value.Int 10)) with
    | Some (Value.Pair (Value.Str via, Value.Addr _)) ->
      check "cheapest affordable" true (via = "cheap")
    | _ -> Alcotest.fail "expected a deal" );
  check "budget too low" true
    (Miro.serve m (Value.Pair (Value.Pfx (pfx "8.0.0.0/8"), Value.Int 1)) = None);
  check "unknown dest" true
    (Miro.serve m (Value.Pair (Value.Pfx (pfx "9.0.0.0/8"), Value.Int 100)) = None);
  check "malformed request" true (Miro.serve m (Value.Int 3) = None);
  check_int "sales recorded" 1 (List.length (Miro.sold m))

let test_miro_negotiate_via_io () =
  let m = miro_inst () in
  let io, register = Portal_io.in_memory () in
  register ~portal:(ip "172.16.5.5") ~service:Miro.service (Miro.serve m);
  ( match Miro.negotiate ~io ~portal:(ip "172.16.5.5") ~dest:(pfx "8.0.0.0/8") ~budget:50 with
    | Some (via, ep) ->
      check "via cheap" true (via = "cheap");
      check "endpoint" true (Ipv4.equal ep (ip "172.16.5.7"))
    | None -> Alcotest.fail "negotiation failed" );
  check "unreachable portal" true
    (Miro.negotiate ~io:Portal_io.null ~portal:(ip "172.16.5.5")
       ~dest:(pfx "8.0.0.0/8") ~budget:50
    = None)

(* ------------------------- Eqbgp ------------------------- *)

let test_eqbgp_contribute_bottleneck () =
  let m = Eqbgp.decision_module { Eqbgp.ingress_bandwidth = 100 } in
  let ia1 = m.Dm.contribute ~me:(asn 2) (base_ia ()) in
  check "first sets own bw" true (Eqbgp.bandwidth_of ia1 = Some 100);
  let m50 = Eqbgp.decision_module { Eqbgp.ingress_bandwidth = 50 } in
  let ia2 = m50.Dm.contribute ~me:(asn 3) ia1 in
  check "narrows" true (Eqbgp.bandwidth_of ia2 = Some 50);
  let m200 = Eqbgp.decision_module { Eqbgp.ingress_bandwidth = 200 } in
  let ia3 = m200.Dm.contribute ~me:(asn 4) ia2 in
  check "cannot widen" true (Eqbgp.bandwidth_of ia3 = Some 50)

let test_eqbgp_select_widest () =
  let m = Eqbgp.decision_module { Eqbgp.ingress_bandwidth = 1 } in
  let with_bw b ia =
    Ia.set_path_descriptor ~owners:[ Eqbgp.protocol ] ~field:Eqbgp.field_bandwidth
      (Value.Int b) ia
  in
  let wide = cand ~peer_n:3 (with_bw 900 (Ia.prepend_as (asn 8) (base_ia ()))) in
  let narrow = cand ~peer_n:2 (with_bw 10 (base_ia ())) in
  let unknown = cand ~peer_n:1 (base_ia ()) in
  check "widest wins over shorter" true
    (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ narrow; wide ] = Some wide);
  check "known beats unknown" true
    (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ unknown; narrow ] = Some narrow)

let qcheck =
  let open QCheck in
  [ Test.make ~name:"pathlet value roundtrip" ~count:200
      (pair (int_bound 10000) (list_of_size (Gen.int_range 1 5) (string_gen_of_size (Gen.return 3) Gen.printable)))
      (fun (fid, routers) ->
        let p = Pathlet.make ~fid (List.map (fun r -> Pathlet.Router r) routers) in
        Pathlet.of_value (Pathlet.to_value p) = Some p);
    Test.make ~name:"bgpsec verify accepts exactly the signed chain" ~count:50
      (list_of_size (Gen.int_range 0 4) (int_bound 2))
      (fun hops ->
        (* build chain 1 -> (hops of ASes 2/3/4) and check Full *)
        let next = ref 1 in
        let ia = ref (Bgpsec.sign_origin ~secret:"k1" ~me:(asn 1) (base_ia ())) in
        List.iter
          (fun _ ->
            incr next;
            let n = 2 + (!next mod 2) in
            let secret = List.assoc n keys in
            let m = Bgpsec.decision_module { Bgpsec.me = asn n; secret; pki; require_full = false; authorized = None } in
            if not (List.mem (asn n) (Ia.asns_on_path !ia)) then
              ia := Ia.prepend_as (asn n) (m.Dm.contribute ~me:(asn n) !ia))
          hops;
        Bgpsec.verify ~pki !ia = Bgpsec.Full) ]

let () =
  Alcotest.run "protocols"
    [ ("wiser",
       [ Alcotest.test_case "contribute accumulates" `Quick test_wiser_contribute_accumulates;
         Alcotest.test_case "select lowest cost" `Quick test_wiser_select_lowest_cost;
         Alcotest.test_case "upstream portal" `Quick test_wiser_upstream_portal;
         Alcotest.test_case "cost exchange" `Quick test_wiser_cost_exchange ]);
      ("pathlet",
       [ Alcotest.test_case "validation" `Quick test_pathlet_make_validation;
         Alcotest.test_case "compose" `Quick test_pathlet_compose;
         Alcotest.test_case "value roundtrip" `Quick test_pathlet_value_roundtrip;
         Alcotest.test_case "store routes" `Quick test_pathlet_store_routes;
         Alcotest.test_case "loop-free search" `Quick test_pathlet_store_no_fid_reuse_loop;
         Alcotest.test_case "attach/extract" `Quick test_pathlet_attach_extract;
         Alcotest.test_case "translation" `Quick test_pathlet_translation ]);
      ("scion",
       [ Alcotest.test_case "attach/extract/choose" `Quick test_scion_attach_extract_choose;
         Alcotest.test_case "module contributes" `Quick test_scion_module_contributes ]);
      ("bgpsec",
       [ Alcotest.test_case "mac" `Quick test_bgpsec_mac_deterministic;
         Alcotest.test_case "full chain" `Quick test_bgpsec_verify_full;
         Alcotest.test_case "gap is partial" `Quick test_bgpsec_gap_is_partial;
         Alcotest.test_case "tamper broken" `Quick test_bgpsec_tamper_broken;
         Alcotest.test_case "module filters" `Quick test_bgpsec_module_filters;
         Alcotest.test_case "select prefers attested" `Quick test_bgpsec_select_prefers_attested;
         Alcotest.test_case "drop filter" `Quick test_bgpsec_drop_filter ]);
      ("miro",
       [ Alcotest.test_case "advertise/discover" `Quick test_miro_advertise_discover;
         Alcotest.test_case "serve budget" `Quick test_miro_serve_budget;
         Alcotest.test_case "negotiate via io" `Quick test_miro_negotiate_via_io ]);
      ("eqbgp",
       [ Alcotest.test_case "bottleneck narrows" `Quick test_eqbgp_contribute_bottleneck;
         Alcotest.test_case "select widest" `Quick test_eqbgp_select_widest ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
