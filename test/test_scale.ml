(* The @scale smoke cell: the full Internet-scale benchmark machinery
   (CAIDA topology, background convergence, full-table feed load, and
   the three-way session-bounce table-transfer comparison) at 100 ASes
   and 1k prefixes, with the tentpole's headline claims asserted on the
   real counters.  The committed BENCH_scale.json runs the same code at
   {1k, 10k} ASes x {1k, 100k} prefixes via `dune exec bench/main.exe`
   or `dbgp-sim scale`. *)

module E = Dbgp_eval

let check = Alcotest.(check bool)

let test_smoke () =
  let r = E.Scale_bench.smoke () in
  Format.printf "%a@." E.Scale_bench.pp r;
  let n = r.E.Scale_bench.prefixes in
  check "table loaded" true (r.E.Scale_bench.load_updates >= n);
  check "updates/s measured" true (r.E.Scale_bench.load_updates_per_s > 0.);
  check "words/route measured" true (r.E.Scale_bench.words_per_route > 0.);
  (* The bugfix, end to end: a legacy session bounce re-announces the
     full table; the streamed incremental re-establish sends ~nothing
     for an unchanged table and exactly the changed slice under churn. *)
  check "legacy arm storms the full table" true
    (r.E.Scale_bench.full_transfer_msgs >= n);
  check "clean incremental arm sends ~nothing" true
    (r.E.Scale_bench.clean_transfer_msgs <= 2);
  check "clean arm skipped the whole table" true
    (r.E.Scale_bench.clean_skipped >= n);
  check "churn arm re-sends only what changed" true
    (r.E.Scale_bench.churn_transfer_msgs
     <= r.E.Scale_bench.churn_routes + 1
    && r.E.Scale_bench.churn_transfer_msgs >= r.E.Scale_bench.churn_routes)

let () =
  Alcotest.run "scale"
    [ ( "smoke",
        [ Alcotest.test_case "100 ASes / 1k prefixes" `Quick test_smoke ] ) ]
