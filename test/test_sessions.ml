(* Tests for the FSM-driven session layer and the convergence /
   empirical-overhead experiments built on it. *)

open Dbgp_types
module Eq = Dbgp_netsim.Event_queue
module Session = Dbgp_netsim.Session
module Fsm = Dbgp_bgp.Fsm
module Message = Dbgp_bgp.Message
module Ia = Dbgp_core.Ia
module Legacy = Dbgp_core.Legacy
module E = Dbgp_eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string

let cfg n id : Fsm.config =
  { Fsm.my_asn = asn n; my_id = ip id; hold_time = 90;
    capabilities = [ Message.capability_dbgp ] }

let fresh_pair ?latency () =
  let q = Eq.create () in
  let a, b = Session.create q ?latency ~a:(cfg 65001 "10.0.0.1") ~b:(cfg 65002 "10.0.0.2") () in
  (q, a, b)

let establish q a b =
  Session.start a;
  Session.start b;
  ignore (Eq.run ~max_events:50 q)

let test_session_establishment () =
  let q, a, b = fresh_pair () in
  let up_a = ref None and up_b = ref None in
  Session.set_callbacks a
    { Session.null_callbacks with
      Session.on_established = (fun o -> up_a := Some o) };
  Session.set_callbacks b
    { Session.null_callbacks with
      Session.on_established = (fun o -> up_b := Some o) };
  establish q a b;
  check "a established" true (Session.state a = Fsm.Established);
  check "b established" true (Session.state b = Fsm.Established);
  ( match !up_a with
    | Some o ->
      check "a saw b's ASN" true (Asn.equal o.Message.my_asn (asn 65002));
      check "capability exchanged" true
        (List.mem Message.capability_dbgp o.Message.capabilities)
    | None -> Alcotest.fail "a's session-up callback never fired" );
  check "b's callback fired" true (!up_b <> None);
  check "handshake counted" true (Session.messages_sent a >= 2)

let test_session_ia_transfer () =
  let q, a, b = fresh_pair () in
  establish q a b;
  let received = ref [] in
  Session.set_callbacks b
    { Session.null_callbacks with
      Session.on_update = (fun u -> received := u :: !received) };
  let ia =
    Ia.originate ~prefix:(pfx "99.0.0.0/24") ~origin_asn:(asn 65001)
      ~next_hop:(ip "10.0.0.1") ()
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"wiser-cost"
         (Dbgp_core.Value.Int 7)
  in
  Session.send_ia a ia;
  ignore (Eq.run ~max_events:20 q);
  match !received with
  | [ u ] ->
    ( match Legacy.of_update u with
      | Some ia' -> check "IA intact over the session" true (Ia.equal ia ia')
      | None -> Alcotest.fail "legacy decode failed" )
  | l -> Alcotest.fail (Printf.sprintf "expected one update, got %d" (List.length l))

let test_session_send_requires_established () =
  let _, a, _ = fresh_pair () in
  Alcotest.check_raises "not established"
    (Invalid_argument "Session.send_update: session not established") (fun () ->
      Session.send_update a
        { Message.withdrawn = []; attrs = None; nlri = [] })

let test_session_drop_and_recover () =
  let q, a, b = fresh_pair () in
  establish q a b;
  let downs = ref 0 in
  Session.set_callbacks a
    { Session.null_callbacks with Session.on_down = (fun () -> incr downs) };
  Session.drop_connection a;
  ignore (Eq.run ~max_events:50 q);
  check "both idle after failure" true
    (Session.state a = Fsm.Idle && Session.state b = Fsm.Idle);
  check_int "down callback" 1 !downs;
  (* recovery *)
  establish q a b;
  check "re-established" true
    (Session.state a = Fsm.Established && Session.state b = Fsm.Established)

let test_session_admin_stop () =
  let q, a, b = fresh_pair () in
  establish q a b;
  Session.stop a;
  ignore (Eq.run ~max_events:50 q);
  check "a idle" true (Session.state a = Fsm.Idle);
  (* b received the CEASE notification and tore down too *)
  check "b idle" true (Session.state b = Fsm.Idle)

let test_session_keepalives_maintain () =
  let q, a, b = fresh_pair () in
  establish q a b;
  (* run simulated time well past the hold time: keepalives must keep the
     session alive *)
  ignore (Eq.run ~max_events:400 q);
  check "still established" true
    (Session.state a = Fsm.Established && Session.state b = Fsm.Established)

(* ------------------------- auto-reconnect ------------------------- *)

let no_jitter_retry =
  { Fsm.default_retry with Fsm.jitter = 0.; max_retries = 8 }

let retry_pair ?(retry = no_jitter_retry) () =
  let q = Eq.create () in
  let a, b =
    Session.create q ~retry ~a:(cfg 65001 "10.0.0.1") ~b:(cfg 65002 "10.0.0.2") ()
  in
  (q, a, b)

let test_session_auto_reconnect () =
  let q, a, b = retry_pair () in
  establish q a b;
  check "established" true (Session.state a = Fsm.Established);
  (* Transport failure: with retry configured, NO manual restart — the
     backoff timer must bring the session back by itself. *)
  Session.drop_connection a;
  ignore (Eq.run ~max_events:400 q);
  check "a re-established without manual start" true
    (Session.state a = Fsm.Established);
  check "b re-established without manual start" true
    (Session.state b = Fsm.Established);
  check "a armed at least one retry" true (Session.retry_count a >= 1)

let test_session_reconnect_repeated () =
  let q, a, b = retry_pair () in
  establish q a b;
  for _ = 1 to 3 do
    Session.drop_connection a;
    ignore (Eq.run ~max_events:600 q)
  done;
  check "still comes back after repeated drops" true
    (Session.state a = Fsm.Established && Session.state b = Fsm.Established)

let test_session_reconnect_deterministic () =
  let run () =
    let q, a, b =
      retry_pair ~retry:{ Fsm.default_retry with Fsm.jitter = 0.3; seed = 11 } ()
    in
    establish q a b;
    Session.drop_connection a;
    ignore (Eq.run ~max_events:400 q);
    (Eq.now q, Session.retry_count a, Session.retry_count b,
     Session.messages_sent a)
  in
  check "identical seeds replay identically" true (run () = run ())

let test_session_drop_when_idle_is_harmless () =
  let q, a, b = fresh_pair () in
  establish q a b;
  Session.drop_connection a;
  ignore (Eq.run ~max_events:50 q);
  check "both idle" true (Session.state a = Fsm.Idle && Session.state b = Fsm.Idle);
  let sent = Session.messages_sent a + Session.messages_sent b in
  (* The satellite fix: a failure landing at an endpoint already back in
     Idle must be swallowed, not re-fired into the FSM. *)
  Session.drop_connection a;
  Session.drop_connection b;
  ignore (Eq.run ~max_events:50 q);
  check "still idle" true (Session.state a = Fsm.Idle && Session.state b = Fsm.Idle);
  check_int "no message churn from stale failures" sent
    (Session.messages_sent a + Session.messages_sent b)

let test_session_chaos_report () =
  let r = E.Chaos.session_chaos ~pairs:4 ~drops:2 ~seed:3 () in
  check_int "all pairs re-established" 4 r.E.Chaos.established;
  check "retries were needed" true (r.E.Chaos.retries > 0);
  let r' = E.Chaos.session_chaos ~pairs:4 ~drops:2 ~seed:3 () in
  check "session chaos deterministic" true (r = r')

(* ------------------------- convergence experiments ------------------------- *)

let test_convergence_vs_size () =
  let rows = E.Convergence.vs_size ~payloads:[ 0; 2048 ] ~sizes:[ 30; 60 ] ~seed:5 () in
  check_int "four rows" 4 (List.length rows);
  let msgs n p =
    (List.find
       (fun (r : E.Convergence.dissemination) ->
         r.E.Convergence.ases = n && r.E.Convergence.payload_bytes = p)
       rows)
      .E.Convergence.messages
  in
  let bytes n p =
    (List.find
       (fun (r : E.Convergence.dissemination) ->
         r.E.Convergence.ases = n && r.E.Convergence.payload_bytes = p)
       rows)
      .E.Convergence.bytes
  in
  (* The paper's argument: IA size does not change convergence message
     counts, only bytes. *)
  check_int "payload does not change messages" (msgs 30 0) (msgs 30 2048);
  check "payload inflates bytes" true (bytes 30 2048 > 10 * bytes 30 0);
  check "more ASes, more messages" true (msgs 60 0 > msgs 30 0)

let test_convergence_failure () =
  let f = E.Convergence.after_failure ~ases:60 ~seed:5 () in
  check "initial propagation happened" true (f.E.Convergence.initial_messages > 0);
  check "reconvergence bounded" true
    (f.E.Convergence.reconvergence_messages < f.E.Convergence.initial_messages)

let test_convergence_session_reset () =
  let plain = E.Convergence.session_reset ~prefixes:50 () in
  let fat = E.Convergence.session_reset ~prefixes:50 ~payload_bytes:2048 () in
  check "reset repeats the full transfer" true
    (plain.E.Convergence.reset_transfer_bytes
     >= plain.E.Convergence.initial_transfer_bytes);
  check "payload amplifies reset cost" true
    (fat.E.Convergence.reset_transfer_bytes
     > 10 * plain.E.Convergence.reset_transfer_bytes)

(* ------------------------- empirical overhead ------------------------- *)

let test_empirical_overhead_agreement () =
  let rows = E.Empirical_overhead.run () in
  check_int "three points" 3 (List.length rows);
  List.iter
    (fun (c : E.Empirical_overhead.comparison) ->
      check
        (Printf.sprintf "%s within 20%% of model" c.E.Empirical_overhead.label)
        true
        (c.E.Empirical_overhead.ratio > 0.8 && c.E.Empirical_overhead.ratio < 1.2))
    rows;
  (* sizes must grow from lo to hi *)
  match rows with
  | [ lo; mid; hi ] ->
    check "monotone" true
      (lo.E.Empirical_overhead.measured_bytes < mid.E.Empirical_overhead.measured_bytes
      && mid.E.Empirical_overhead.measured_bytes < hi.E.Empirical_overhead.measured_bytes)
  | _ -> Alcotest.fail "expected lo/mid/hi"

let () =
  Alcotest.run "sessions"
    [ ("session",
       [ Alcotest.test_case "establishment" `Quick test_session_establishment;
         Alcotest.test_case "ia transfer" `Quick test_session_ia_transfer;
         Alcotest.test_case "requires established" `Quick test_session_send_requires_established;
         Alcotest.test_case "drop and recover" `Quick test_session_drop_and_recover;
         Alcotest.test_case "admin stop" `Quick test_session_admin_stop;
         Alcotest.test_case "keepalives" `Quick test_session_keepalives_maintain ]);
      ("reconnect",
       [ Alcotest.test_case "auto reconnect" `Quick test_session_auto_reconnect;
         Alcotest.test_case "repeated drops" `Quick test_session_reconnect_repeated;
         Alcotest.test_case "deterministic" `Quick test_session_reconnect_deterministic;
         Alcotest.test_case "drop when idle" `Quick test_session_drop_when_idle_is_harmless;
         Alcotest.test_case "session chaos" `Quick test_session_chaos_report ]);
      ("convergence",
       [ Alcotest.test_case "vs size" `Quick test_convergence_vs_size;
         Alcotest.test_case "after failure" `Quick test_convergence_failure;
         Alcotest.test_case "session reset" `Quick test_convergence_session_reset ]);
      ("empirical-overhead",
       [ Alcotest.test_case "model agreement" `Quick test_empirical_overhead_agreement ]) ]
