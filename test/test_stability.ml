(* The divergence lab: static dispute-wheel detection, the online
   oscillation detector, gadget classification (both damping arms), and
   the flap-damping clock under sustained policy-induced churn. *)

open Dbgp_types
module Network = Dbgp_netsim.Network
module Eq = Dbgp_netsim.Event_queue
module Speaker = Dbgp_core.Speaker
module Damping = Dbgp_bgp.Flap_damping
module E = Dbgp_eval
module Stability = Dbgp_eval.Stability
module Scenarios = Dbgp_eval.Scenarios

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Big enough for every gadget to show a verified cycle, small enough to
   keep the suite fast. *)
let budget = 8_000

(* ------------------------- dispute wheels ------------------------- *)

let test_wheel_bad_gadget () =
  match Stability.dispute_wheel Scenarios.bad_gadget_spec with
  | None -> Alcotest.fail "BAD GADGET must contain a dispute wheel"
  | Some nodes ->
    check "wheel visits several nodes" true (List.length nodes >= 3);
    (* The ring nodes dispute; the origin never appears on a wheel. *)
    check "origin not on the wheel" false
      (List.mem Scenarios.bad_gadget_spec.Stability.origin nodes)

let test_wheel_good_gadget () =
  check "flipped preferences are wheel-free" true
    (Stability.dispute_wheel Scenarios.good_gadget_spec = None)

let test_wheel_med () =
  check "MED cluster spec contains a wheel" true
    (Stability.dispute_wheel Scenarios.med_oscillation_spec <> None)

(* ------------------------- classification ------------------------- *)

let converged = function Stability.Converged _ -> true | _ -> false

let classify ?damping build =
  let net = build () in
  ( match damping with
    | Some p -> Network.set_damping net (Some p)
    | None -> () );
  Stability.classify ~budget net

let test_gadgets_oscillate () =
  List.iter
    (fun (name, build) ->
      let verdict, _ = classify build in
      match verdict with
      | Stability.Oscillating { period; time_period; prefixes } ->
        check (name ^ ": positive period") true (period > 0);
        check (name ^ ": positive time period") true (time_period > 0.);
        check (name ^ ": gadget prefix affected") true
          (List.exists (Prefix.equal Scenarios.gadget_prefix) prefixes)
      | v ->
        Alcotest.failf "%s must oscillate, got %s" name
          (Stability.verdict_label v))
    [ ("bad-gadget", Scenarios.bad_gadget);
      ("med-oscillation", Scenarios.med_oscillation);
      ("wiser-feedback", Scenarios.wiser_feedback) ]

let test_controls_converge () =
  List.iter
    (fun (name, build) ->
      let verdict, stats = classify build in
      check (name ^ ": converged") true (converged verdict);
      check (name ^ ": queue actually drained") false stats.Network.exhausted)
    [ ("good-gadget", Scenarios.good_gadget);
      ("relay-line", Scenarios.relay_line);
      ("brite-30", Scenarios.brite_control ~seed:42 ~ases:30) ]

let test_classification_deterministic () =
  let run () = fst (classify Scenarios.bad_gadget) in
  let v1 = run () and v2 = run () in
  ( match (v1, v2) with
    | ( Stability.Oscillating { period = p1; time_period = t1; _ },
        Stability.Oscillating { period = p2; time_period = t2; _ } ) ->
      check_int "same period" p1 p2;
      check "same time period" true (t1 = t2)
    | _ -> Alcotest.fail "bad-gadget must oscillate on both runs" );
  let m1 = fst (classify Scenarios.med_oscillation)
  and m2 = fst (classify Scenarios.med_oscillation) in
  check "MED verdict reproducible" true (m1 = m2)

let test_report_matches_expectations () =
  (* The full lab, both damping arms: every verdict must agree with the
     case's expectation — a censored verdict is only acceptable where
     divergence is expected. *)
  let cases = Scenarios.divergence_cases ~seed:42 ~control_ases:30 () in
  let r = Stability.run_cases ~budget cases in
  check_int "two rows per case" (2 * List.length cases)
    (List.length r.Stability.rows);
  List.iter
    (fun (row : Stability.row) ->
      let case =
        List.find
          (fun (c : Stability.case) -> c.Stability.name = row.Stability.scenario)
          cases
      in
      let ok =
        match row.Stability.verdict with
        | Stability.Converged _ -> not case.Stability.expect_divergence
        | Stability.Oscillating _ | Stability.Censored _ ->
          case.Stability.expect_divergence
      in
      check (row.Stability.scenario ^ ": verdict matches expectation") true ok)
    r.Stability.rows

(* --------------- damping under policy-induced churn --------------- *)

let test_damping_suppresses_policy_churn () =
  (* No link ever flaps in the gadget: every withdrawal is policy-driven.
     Damping must still engage (suppressions), recover via reuse timers
     (reuses), and the oscillation must survive — slower, not cured. *)
  let case =
    List.find
      (fun (c : Stability.case) -> c.Stability.name = "bad-gadget")
      (Scenarios.divergence_cases ())
  in
  let row =
    Stability.run_case ~budget ~damping:(Some Stability.gadget_damping) case
  in
  check "policy churn reached suppression" true (row.Stability.suppressions > 0);
  check "reuse timers recovered suppressed routes" true
    (row.Stability.reuses > 0);
  check "damping does not cure the gadget" false
    (converged row.Stability.verdict);
  let undamped = Stability.run_case ~budget ~damping:None case in
  ( match (undamped.Stability.verdict, row.Stability.verdict) with
    | ( Stability.Oscillating { time_period = fast; _ },
        Stability.Oscillating { time_period = slow; _ } ) ->
      check "damping stretches the cycle" true (slow > fast)
    | _ -> () )

let test_damped_gadget_clock_advances () =
  (* Regression: the reuse timer must never pin the simulator clock.  Two
     historical fixed points — re-arming one event per suppressed peer
     state, and the decayed penalty landing a few ulps above the reuse
     threshold so time-to-reuse underflowed the float clock — both froze
     this exact run at a constant simulated time. *)
  let net = Scenarios.bad_gadget () in
  Network.set_damping net (Some Stability.gadget_damping);
  let stats = Network.run ~max_events:3_000 net in
  check "budget exhausted (gadget still live)" true stats.Network.exhausted;
  check "simulated time advanced through many reuse cycles" true
    (Eq.now (Network.queue net)
    > 4. *. Stability.gadget_damping.Damping.half_life)

let test_damping_clock_exact_reuse_instant () =
  (* time_to_reuse solves for the instant the decayed penalty equals the
     reuse threshold; at precisely that instant the route must be
     reusable despite floating-point rounding in the decay. *)
  let p = { Damping.default with Damping.half_life = 10. } in
  let st = Damping.create () in
  Damping.penalize p st ~now:0. p.Damping.suppress_threshold;
  check "suppressed after the penalize" true (Damping.is_suppressed p st ~now:0.);
  let ttr = Damping.time_to_reuse p st ~now:0. in
  check "positive time to reuse" true (ttr > 0.);
  check "reusable at its own reuse instant" false
    (Damping.is_suppressed p st ~now:ttr);
  check_int "reuse recorded" 1 (Damping.reuses st)

let test_treat_as_withdraw_shares_damping_clock () =
  (* RFC 7606 treat-as-withdraw and an explicit policy withdrawal must
     charge the same penalty clock: same amount, same half-life decay. *)
  let mk () =
    let sp =
      Speaker.create
        (Speaker.config ~asn:(Asn.of_int 2)
           ~addr:(Ipv4.of_string "10.0.0.2") ())
    in
    let from =
      Dbgp_core.Peer.make ~asn:(Asn.of_int 1) ~addr:(Ipv4.of_string "10.0.0.1")
    in
    Speaker.add_neighbor sp
      (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer from);
    Speaker.set_damping sp (Some Damping.default);
    let prefix = Prefix.of_string "99.0.0.0/24" in
    let ia =
      Dbgp_core.Ia.originate ~prefix ~origin_asn:(Asn.of_int 1)
        ~next_hop:(Ipv4.of_string "10.0.0.1") ()
    in
    ignore (Speaker.receive ~now:0. sp ~from (Speaker.Announce ia));
    (sp, from, prefix, ia)
  in
  let sp_w, from_w, prefix, _ = mk () in
  ignore (Speaker.receive ~now:1. sp_w ~from:from_w (Speaker.Withdraw prefix));
  let sp_c, from_c, _, ia = mk () in
  let wire = Dbgp_core.Codec.encode ia ^ "\x00" in
  let outcome, _ = Speaker.receive_wire ~now:1. sp_c ~from:from_c wire in
  check "corrupted update treated as withdraw" true
    (outcome = Speaker.Rx_withdrawn);
  let pen_w = Speaker.flap_penalty sp_w ~now:1. from_w prefix in
  let pen_c = Speaker.flap_penalty sp_c ~now:1. from_c prefix in
  check "same charge on both paths" true (pen_w = pen_c && pen_w > 0.);
  (* One half-life later both clocks have decayed identically. *)
  let later = 1. +. Damping.default.Damping.half_life in
  let dec_w = Speaker.flap_penalty sp_w ~now:later from_w prefix in
  check "half-life halves the penalty" true
    (Float.abs (dec_w -. (pen_w /. 2.)) < 1e-6);
  check "decay identical across paths" true
    (dec_w = Speaker.flap_penalty sp_c ~now:later from_c prefix)

(* ------------------------- detector ------------------------- *)

let test_detector_quiet_on_convergence () =
  (* A converged control must produce no cycles even though the detector
     saw every Loc-RIB change of the dissemination. *)
  let net = Scenarios.relay_line () in
  let d = Stability.attach net in
  ignore (Network.run ~max_events:budget net) |> ignore;
  let cs = Stability.cycles d ~end_time:(Eq.now (Network.queue net)) in
  Stability.detach d;
  check_int "no cycles on a converged run" 0 (List.length cs)

let test_detector_detach_unsubscribes () =
  let net = Scenarios.bad_gadget () in
  let d = Stability.attach net in
  Stability.detach d;
  ignore (Network.run ~max_events:2_000 net);
  check_int "detached detector sees nothing" 0
    (List.length (Stability.cycles d ~end_time:(Eq.now (Network.queue net))))

let () =
  Alcotest.run "stability"
    [ ("dispute-wheel",
       [ Alcotest.test_case "bad gadget has a wheel" `Quick test_wheel_bad_gadget;
         Alcotest.test_case "good gadget is wheel-free" `Quick
           test_wheel_good_gadget;
         Alcotest.test_case "MED cluster has a wheel" `Quick test_wheel_med ]);
      ("classification",
       [ Alcotest.test_case "gadgets oscillate" `Quick test_gadgets_oscillate;
         Alcotest.test_case "controls converge" `Quick test_controls_converge;
         Alcotest.test_case "deterministic" `Quick
           test_classification_deterministic;
         Alcotest.test_case "report matches expectations" `Quick
           test_report_matches_expectations ]);
      ("damping",
       [ Alcotest.test_case "policy churn suppresses and recovers" `Quick
           test_damping_suppresses_policy_churn;
         Alcotest.test_case "damped gadget clock advances" `Quick
           test_damped_gadget_clock_advances;
         Alcotest.test_case "exact reuse instant" `Quick
           test_damping_clock_exact_reuse_instant;
         Alcotest.test_case "treat-as-withdraw shares the clock" `Quick
           test_treat_as_withdraw_shares_damping_clock ]);
      ("detector",
       [ Alcotest.test_case "quiet on convergence" `Quick
           test_detector_quiet_on_convergence;
         Alcotest.test_case "detach unsubscribes" `Quick
           test_detector_detach_unsubscribes ]) ]
