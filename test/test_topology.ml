open Dbgp_types
module G = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Caida = Dbgp_topology.Caida
module Routing = Dbgp_topology.Routing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------- As_graph ------------------------- *)

let test_graph_basics () =
  let g = G.create 4 in
  G.add_customer_provider g ~customer:0 ~provider:1;
  G.add_peering g 1 2;
  G.add_customer_provider g ~customer:3 ~provider:1;
  check_int "size" 4 (G.size g);
  check_int "edges" 3 (G.edge_count g);
  check "0 sees 1 as provider" true (G.view_of g ~me:0 ~neighbor:1 = Some G.Provider_of_me);
  check "1 sees 0 as customer" true (G.view_of g ~me:1 ~neighbor:0 = Some G.Customer_of_me);
  check "peering symmetric" true
    (G.view_of g ~me:1 ~neighbor:2 = Some G.Peer_of_me
    && G.view_of g ~me:2 ~neighbor:1 = Some G.Peer_of_me);
  check "unknown" true (G.view_of g ~me:0 ~neighbor:2 = None);
  check_int "providers of 0" 1 (List.length (G.providers g 0));
  check_int "customers of 1" 2 (List.length (G.customers g 1));
  check_int "peers of 1" 1 (List.length (G.peers g 1))

let test_graph_errors () =
  let g = G.create 2 in
  Alcotest.check_raises "self-link" (Invalid_argument "As_graph: self-link")
    (fun () -> G.add_peering g 1 1);
  Alcotest.check_raises "bad id" (Invalid_argument "As_graph: bad AS id 5")
    (fun () -> G.add_peering g 0 5)

let test_graph_relationship_replace () =
  let g = G.create 2 in
  G.add_customer_provider g ~customer:0 ~provider:1;
  G.add_peering g 0 1;
  check "replaced by peering" true (G.view_of g ~me:0 ~neighbor:1 = Some G.Peer_of_me);
  check_int "still one edge" 1 (G.edge_count g)

let test_connectivity_stubs () =
  let g = G.create 4 in
  G.add_customer_provider g ~customer:0 ~provider:1;
  check "disconnected" false (G.is_connected g);
  G.add_customer_provider g ~customer:2 ~provider:1;
  G.add_customer_provider g ~customer:3 ~provider:2;
  check "connected" true (G.is_connected g);
  check "stubs are customer-less" true (List.sort compare (G.stubs g) = [ 0; 3 ])

(* ------------------------- Brite ------------------------- *)

let test_brite_connected_deterministic () =
  let params = { Brite.default with Brite.n = 200 } in
  let g1 = Brite.generate (Prng.create 1) params in
  let g2 = Brite.generate (Prng.create 1) params in
  check "connected" true (G.is_connected g1);
  check_int "same edge count (deterministic)" (G.edge_count g1) (G.edge_count g2);
  check "edges >= n-1" true (G.edge_count g1 >= 199);
  let g3 = Brite.generate (Prng.create 2) params in
  check "different seed differs" true (G.edge_count g1 <> G.edge_count g3 ||
    G.fold_edges (fun a b _ acc -> acc + (a * 31) + b) g1 0
    <> G.fold_edges (fun a b _ acc -> acc + (a * 31) + b) g3 0)

let test_brite_provider_acyclic () =
  let g = Brite.generate (Prng.create 7) { Brite.default with Brite.n = 300 } in
  (* Kahn's algorithm over customer->provider edges. *)
  let n = G.size g in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter (fun _ -> indeg.(v) <- indeg.(v) + 1) (G.customers g v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    List.iter
      (fun p ->
        indeg.(p) <- indeg.(p) - 1;
        if indeg.(p) = 0 then Queue.add p queue)
      (G.providers g v)
  done;
  check_int "provider DAG is acyclic" n !seen

let test_brite_params_validated () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Brite.generate: need at least 2 ASes") (fun () ->
      ignore (Brite.generate (Prng.create 0) { Brite.default with Brite.n = 1 }));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Brite.generate: bad alpha")
    (fun () ->
      ignore (Brite.generate (Prng.create 0) { Brite.default with Brite.alpha = 0. }))

(* ------------------------- Routing ------------------------- *)

(* A diamond: 0 -> {1, 2} -> 3, plus a long chain 0 -> 4 -> 5 -> 3. *)
let diamond () =
  let g = G.create 6 in
  G.add_customer_provider g ~customer:0 ~provider:1;
  G.add_customer_provider g ~customer:0 ~provider:2;
  G.add_customer_provider g ~customer:1 ~provider:3;
  G.add_customer_provider g ~customer:2 ~provider:3;
  G.add_customer_provider g ~customer:0 ~provider:4;
  G.add_customer_provider g ~customer:4 ~provider:5;
  G.add_customer_provider g ~customer:5 ~provider:3;
  g

let no_extend ~at:_ ~from:_ () = Some ()

let test_routing_shortest () =
  let g = diamond () in
  let routes =
    Routing.compute g ~dest:0 ~origin:() ~extend:no_extend
      ~prefer:Routing.shortest_path_prefer
  in
  ( match routes.(3) with
    | None -> Alcotest.fail "3 should reach 0"
    | Some r ->
      check_int "path length 3" 3 (List.length r.Routing.path);
      check "via 1 (lowest next hop)" true (r.Routing.path = [ 3; 1; 0 ]) );
  match routes.(5) with
  | None -> Alcotest.fail "5 should reach 0"
  | Some r -> check "chain path" true (r.Routing.path = [ 5; 4; 0 ])

let test_routing_valley_free_export () =
  (* 1 <- 0 -> 2 with 0 the customer of both: 1 must not reach dest 2
     through 0 (customer does not transit its providers). *)
  let g = G.create 3 in
  G.add_customer_provider g ~customer:0 ~provider:1;
  G.add_customer_provider g ~customer:0 ~provider:2;
  let routes =
    Routing.compute g ~dest:2 ~origin:() ~extend:no_extend
      ~prefer:Routing.shortest_path_prefer
  in
  check "0 reaches its provider" true (routes.(0) <> None);
  check "1 cannot transit customer 0" true (routes.(1) = None)

let test_routing_peer_no_transit () =
  (* dest 0 -- peer 1 -- peer 2: peer routes are not re-exported to peers. *)
  let g = G.create 3 in
  G.add_peering g 0 1;
  G.add_peering g 1 2;
  let routes =
    Routing.compute g ~dest:0 ~origin:() ~extend:no_extend
      ~prefer:Routing.shortest_path_prefer
  in
  check "direct peer reaches" true (routes.(1) <> None);
  check "two peer hops blocked" true (routes.(2) = None)

let test_routing_peer_to_customer () =
  (* dest 0 -- peer 1, customer 2 of 1: 1 exports its peer route down. *)
  let g = G.create 3 in
  G.add_peering g 0 1;
  G.add_customer_provider g ~customer:2 ~provider:1;
  let routes =
    Routing.compute g ~dest:0 ~origin:() ~extend:no_extend
      ~prefer:Routing.shortest_path_prefer
  in
  check "customer hears peer route" true (routes.(2) <> None)

let test_routing_extend_reject () =
  let g = diamond () in
  (* Reject anything through AS 1; path must go via 2. *)
  let extend ~at ~from:_ () = if at = 1 then None else Some () in
  let routes =
    Routing.compute g ~dest:0 ~origin:() ~extend
      ~prefer:Routing.shortest_path_prefer
  in
  match routes.(3) with
  | None -> Alcotest.fail "3 should still reach 0"
  | Some r -> check "avoids 1" true (not (List.mem 1 r.Routing.path))

let test_routing_metric_payload () =
  let g = diamond () in
  (* Count hops in the payload; prefer higher (longer paths).  The fixed
     point must stay internally consistent: payload = hops, loop-free,
     and at least one AS ends up on a non-shortest path. *)
  let extend ~at:_ ~from:_ d = Some (d + 1) in
  let prefer ~at:_ a b = Int.compare a.Routing.payload b.Routing.payload in
  let routes = Routing.compute g ~dest:0 ~origin:0 ~extend ~prefer in
  Array.iter
    (function
      | None -> ()
      | Some r ->
        check_int "payload tracks hops" (List.length r.Routing.path - 1) r.Routing.payload;
        check "loop free" true
          (List.length (List.sort_uniq compare r.Routing.path) = List.length r.Routing.path))
    routes;
  let shortest =
    Routing.compute g ~dest:0 ~origin:() ~extend:no_extend
      ~prefer:Routing.shortest_path_prefer
  in
  let stretched =
    Array.exists2
      (fun a b ->
        match (a, b) with
        | Some x, Some y -> List.length x.Routing.path > List.length y.Routing.path
        | _ -> false)
      routes shortest
  in
  check "some AS picked a longer path" true stretched

let test_is_valley_free () =
  let g = diamond () in
  check "uphill path ok" true (Routing.is_valley_free g [ 0; 1; 3 ]);
  check "up-down ok" true (Routing.is_valley_free g [ 1; 3; 2 ]);
  check "valley rejected" false (Routing.is_valley_free g [ 1; 0; 2 ]);
  check "non-edge rejected" false (Routing.is_valley_free g [ 0; 3 ])

let test_routing_exportable_rules () =
  check "origin to provider" true (Routing.exportable Routing.Origin G.Provider_of_me);
  check "customer route to peer" true
    (Routing.exportable Routing.From_customer G.Peer_of_me);
  check "peer route to provider blocked" false
    (Routing.exportable Routing.From_peer G.Provider_of_me);
  check "provider route to customer ok" true
    (Routing.exportable Routing.From_provider G.Customer_of_me);
  check "provider route to peer blocked" false
    (Routing.exportable Routing.From_provider G.Peer_of_me)

(* Property: on generated topologies every computed route is valley-free
   and loop-free. *)
let qcheck =
  let open QCheck in
  [ Test.make ~name:"computed routes are valley-free and loop-free" ~count:20
      (int_bound 1000)
      (fun seed ->
        let g =
          Brite.generate (Prng.create seed) { Brite.default with Brite.n = 60 }
        in
        let routes =
          Routing.compute g ~dest:(seed mod 60) ~origin:() ~extend:no_extend
            ~prefer:Routing.shortest_path_prefer
        in
        Array.for_all
          (function
            | None -> true
            | Some r ->
              let path = r.Routing.path in
              Routing.is_valley_free g path
              && List.length (List.sort_uniq compare path) = List.length path)
          routes);
    Test.make ~name:"destination's neighbors always reach it" ~count:20
      (int_bound 1000)
      (fun seed ->
        (* Valley-freeness can legitimately disconnect distant ASes, but a
           direct neighbor always hears the origin's advertisement. *)
        let g =
          Brite.generate (Prng.create seed) { Brite.default with Brite.n = 40 }
        in
        let dest = seed mod 40 in
        let routes =
          Routing.compute g ~dest ~origin:() ~extend:no_extend
            ~prefer:Routing.classful_prefer
        in
        List.for_all
          (fun (u, _) -> Option.is_some routes.(u))
          (Dbgp_topology.As_graph.neighbors g dest)) ]

(* ------------------------- Caida ------------------------- *)

let test_caida_connected_deterministic () =
  let params = { Caida.default with Caida.n = 1_000 } in
  let g1 = Caida.generate (Prng.create 1) params in
  let g2 = Caida.generate (Prng.create 1) params in
  check "connected" true (G.is_connected g1);
  check_int "deterministic" (G.edge_count g1) (G.edge_count g2);
  check "another seed differs" true
    (G.edge_count (Caida.generate (Prng.create 9) params) <> G.edge_count g1
    || G.degree (Caida.generate (Prng.create 9) params) 0 <> G.degree g1 0)

let test_caida_shape () =
  let params = { Caida.default with Caida.n = 1_000 } in
  let g = Caida.generate (Prng.create 7) params in
  (* The tier-1 core is a fully peered clique... *)
  for a = 0 to params.Caida.tier1 - 1 do
    for b = a + 1 to params.Caida.tier1 - 1 do
      check "core fully peered" true
        (G.view_of g ~me:a ~neighbor:b = Some G.Peer_of_me)
    done
  done;
  (* ...transit is acyclic because providers always have earlier ids... *)
  check "provider orientation acyclic" true
    (List.for_all
       (fun v -> List.for_all (fun p -> p < v) (G.providers g v))
       (List.init (G.size g) Fun.id));
  (* ...and preferential attachment yields a heavy power-law tail: a few
     hubs with enormous degree over a mass of single-homed stubs. *)
  let degrees =
    List.sort compare (List.init (G.size g) (fun v -> G.degree g v))
  in
  let max_deg = List.nth degrees (List.length degrees - 1) in
  let median = List.nth degrees (List.length degrees / 2) in
  check "heavy tail" true (max_deg >= 20 * median);
  check "mostly low-degree edge" true (median <= 3)

let test_caida_params_validated () =
  let gen p = ignore (Caida.generate (Prng.create 1) p) in
  let raises p =
    match gen p with exception Invalid_argument _ -> true | () -> false
  in
  check "n too small" true (raises { Caida.default with Caida.n = 1 });
  check "bad tier1" true
    (raises { Caida.default with Caida.n = 10; tier1 = 0 });
  check "bad multihome" true
    (raises { Caida.default with Caida.n = 10; multihome = 1.0 });
  check "bad peering" true
    (raises { Caida.default with Caida.n = 10; peering = -0.1 })

let test_caida_serial1 () =
  let text =
    "# comment line\n\
     701|7018|0\n\
     701|64500|-1\n\
     7018|64501|-1\n\
     \n\
     64500|64501|0\n"
  in
  let g, asns = Caida.parse_serial1 text in
  check_int "four ASes" 4 (G.size g);
  check "dense ids in first-appearance order" true
    (asns = [| 701; 7018; 64500; 64501 |]);
  check "transit orientation" true
    (G.view_of g ~me:2 ~neighbor:0 = Some G.Provider_of_me
    && G.view_of g ~me:0 ~neighbor:2 = Some G.Customer_of_me);
  check "peering" true
    (G.view_of g ~me:0 ~neighbor:1 = Some G.Peer_of_me
    && G.view_of g ~me:2 ~neighbor:3 = Some G.Peer_of_me);
  check "malformed line reports its number" true
    (match Caida.parse_serial1 "701|7018|0\n701|oops|-1\n" with
    | exception Invalid_argument m ->
      (* the bad line is line 2 *)
      let has s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      has m "line 2"
    | _ -> false);
  check "bad relationship rejected" true
    (match Caida.parse_serial1 "701|7018|7\n1|2|0\n" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "topology"
    [ ("as-graph",
       [ Alcotest.test_case "basics" `Quick test_graph_basics;
         Alcotest.test_case "errors" `Quick test_graph_errors;
         Alcotest.test_case "relationship replace" `Quick test_graph_relationship_replace;
         Alcotest.test_case "connectivity/stubs" `Quick test_connectivity_stubs ]);
      ("brite",
       [ Alcotest.test_case "connected+deterministic" `Quick test_brite_connected_deterministic;
         Alcotest.test_case "provider DAG" `Quick test_brite_provider_acyclic;
         Alcotest.test_case "validation" `Quick test_brite_params_validated ]);
      ("caida",
       [ Alcotest.test_case "connected+deterministic" `Quick
           test_caida_connected_deterministic;
         Alcotest.test_case "clique, DAG, power-law" `Quick test_caida_shape;
         Alcotest.test_case "validation" `Quick test_caida_params_validated;
         Alcotest.test_case "serial-1 parser" `Quick test_caida_serial1 ]);
      ("routing",
       [ Alcotest.test_case "shortest" `Quick test_routing_shortest;
         Alcotest.test_case "no customer transit" `Quick test_routing_valley_free_export;
         Alcotest.test_case "no peer transit" `Quick test_routing_peer_no_transit;
         Alcotest.test_case "peer to customer" `Quick test_routing_peer_to_customer;
         Alcotest.test_case "extend can reject" `Quick test_routing_extend_reject;
         Alcotest.test_case "metric payload" `Quick test_routing_metric_payload;
         Alcotest.test_case "valley-free predicate" `Quick test_is_valley_free;
         Alcotest.test_case "export rules" `Quick test_routing_exportable_rules ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
