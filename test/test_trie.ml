open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string
let ip = Ipv4.of_string

let test_add_find () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") "a" |> Trie.add (p "10.1.0.0/16") "b" in
  check "find /8" true (Trie.find (p "10.0.0.0/8") t = Some "a");
  check "find /16" true (Trie.find (p "10.1.0.0/16") t = Some "b");
  check "exact only" true (Trie.find (p "10.0.0.0/9") t = None);
  check "mem" true (Trie.mem (p "10.0.0.0/8") t);
  check_int "cardinal" 2 (Trie.cardinal t)

let test_replace () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") 1 |> Trie.add (p "10.0.0.0/8") 2 in
  check "replaced" true (Trie.find (p "10.0.0.0/8") t = Some 2);
  check_int "no dup" 1 (Trie.cardinal t)

let test_remove () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") 1 |> Trie.add (p "10.1.0.0/16") 2 in
  let t = Trie.remove (p "10.0.0.0/8") t in
  check "gone" true (Trie.find (p "10.0.0.0/8") t = None);
  check "sibling kept" true (Trie.find (p "10.1.0.0/16") t = Some 2);
  check "remove absent is noop" true
    (Trie.cardinal (Trie.remove (p "99.0.0.0/8") t) = 1);
  check "empty after full removal" true
    (Trie.is_empty (Trie.remove (p "10.1.0.0/16") t))

let test_update () =
  let t = Trie.update (p "1.0.0.0/8") (function None -> Some 5 | Some _ -> None) Trie.empty in
  check "inserted" true (Trie.find (p "1.0.0.0/8") t = Some 5);
  let t = Trie.update (p "1.0.0.0/8") (Option.map succ) t in
  check "modified" true (Trie.find (p "1.0.0.0/8") t = Some 6);
  let t = Trie.update (p "1.0.0.0/8") (fun _ -> None) t in
  check "deleted" true (Trie.is_empty t)

let test_longest_match () =
  let t =
    Trie.empty
    |> Trie.add (p "0.0.0.0/0") "default"
    |> Trie.add (p "10.0.0.0/8") "eight"
    |> Trie.add (p "10.1.0.0/16") "sixteen"
  in
  let lm a = Option.map snd (Trie.longest_match (ip a) t) in
  check "most specific" true (lm "10.1.2.3" = Some "sixteen");
  check "middle" true (lm "10.2.0.1" = Some "eight");
  check "default" true (lm "192.0.2.1" = Some "default");
  check "none" true
    (Trie.longest_match (ip "192.0.2.1") (Trie.remove (p "0.0.0.0/0") t) = None)

let test_matches_order () =
  let t =
    Trie.empty
    |> Trie.add (p "0.0.0.0/0") 0
    |> Trie.add (p "10.0.0.0/8") 8
    |> Trie.add (p "10.1.0.0/16") 16
  in
  let ms = Trie.matches (ip "10.1.9.9") t in
  check "most specific first" true (List.map snd ms = [ 16; 8; 0 ])

let test_covered () =
  let t =
    Trie.empty
    |> Trie.add (p "10.0.0.0/8") 'a'
    |> Trie.add (p "10.1.0.0/16") 'b'
    |> Trie.add (p "11.0.0.0/8") 'c'
  in
  let cs = Trie.covered (p "10.0.0.0/8") t in
  check_int "two covered" 2 (List.length cs);
  check "c excluded" false (List.exists (fun (_, v) -> v = 'c') cs)

let test_fold_order () =
  let t =
    Trie.of_list
      [ (p "192.0.0.0/8", 3); (p "10.0.0.0/8", 1); (p "10.0.0.0/16", 2) ]
  in
  let keys = List.map (fun (q, _) -> Prefix.to_string q) (Trie.bindings t) in
  check "prefix order" true
    (keys = [ "10.0.0.0/8"; "10.0.0.0/16"; "192.0.0.0/8" ])

let test_map_filter () =
  let t = Trie.of_list [ (p "1.0.0.0/8", 1); (p "2.0.0.0/8", 2) ] in
  let doubled = Trie.map (fun v -> v * 2) t in
  check "map" true (Trie.find (p "2.0.0.0/8") doubled = Some 4);
  let odd = Trie.filter (fun _ v -> v mod 2 = 1) t in
  check_int "filter" 1 (Trie.cardinal odd)

(* The pre-compression binary trie, verbatim from the repo's history:
   the reference model the path-compressed implementation must agree
   with on every observable. *)
module Ref_trie = struct
  type 'a t = Empty | Node of 'a option * 'a t * 'a t

  let empty = Empty

  let node v l r =
    match (v, l, r) with None, Empty, Empty -> Empty | _ -> Node (v, l, r)

  let add p value t =
    let len = Prefix.length p in
    let rec go i t =
      let v, l, r =
        match t with Empty -> (None, Empty, Empty) | Node (v, l, r) -> (v, l, r)
      in
      if i = len then Node (Some value, l, r)
      else if Prefix.bit p i then Node (v, l, go (i + 1) r)
      else Node (v, go (i + 1) l, r)
    in
    go 0 t

  let update p f t =
    let len = Prefix.length p in
    let rec go i t =
      let v, l, r =
        match t with Empty -> (None, Empty, Empty) | Node (v, l, r) -> (v, l, r)
      in
      if i = len then node (f v) l r
      else if Prefix.bit p i then node v l (go (i + 1) r)
      else node v (go (i + 1) l) r
    in
    go 0 t

  let remove p t = update p (fun _ -> None) t

  let find p t =
    let len = Prefix.length p in
    let rec go i t =
      match t with
      | Empty -> None
      | Node (v, l, r) ->
        if i = len then v
        else if Prefix.bit p i then go (i + 1) r
        else go (i + 1) l
    in
    go 0 t

  let addr_bit a i = Ipv4.to_int a land (1 lsl (31 - i)) <> 0

  let matches addr t =
    let rec go i t acc =
      match t with
      | Empty -> acc
      | Node (v, l, r) ->
        let acc =
          match v with
          | None -> acc
          | Some x -> (Prefix.make addr i, x) :: acc
        in
        if i = 32 then acc
        else if addr_bit addr i then go (i + 1) r acc
        else go (i + 1) l acc
    in
    go 0 t []

  let longest_match addr t =
    match matches addr t with [] -> None | best :: _ -> Some best

  let rec fold_at p f t acc =
    match t with
    | Empty -> acc
    | Node (v, l, r) ->
      let acc = match v with None -> acc | Some x -> f p x acc in
      ( match Prefix.split p with
        | None -> acc
        | Some (lo, hi) -> fold_at hi f r (fold_at lo f l acc) )

  let fold f t acc =
    let items = fold_at Prefix.default (fun p v acc -> (p, v) :: acc) t [] in
    List.fold_left (fun acc (p, v) -> f p v acc) acc (List.rev items)

  let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

  let covered p t =
    bindings t |> List.filter (fun (q, _) -> Prefix.subsumes p q)
end

(* Seeded random tables emphasizing exactly what path compression can
   break: /0 and /32 extremes, and sibling pairs that differ only in
   the bit right at the prefix boundary. *)
let qcheck_vs_reference =
  let open QCheck in
  let gen_prefix =
    Gen.(
      let gen_len = oneof [ oneofl [ 0; 1; 31; 32 ]; int_bound 32 ] in
      map2
        (fun net len -> Prefix.make (Ipv4.of_int net) len)
        (int_bound 0xFFFFFFFF) gen_len)
  in
  let with_siblings =
    Gen.(
      list_size (int_range 0 48) (pair gen_prefix (pair bool (int_bound 100)))
      |> map
           (List.concat_map (fun (q, (sib, v)) ->
                let l = Prefix.length q in
                if sib && l > 0 then
                  let flipped =
                    Ipv4.of_int
                      (Ipv4.to_int (Prefix.network q) lxor (1 lsl (32 - l)))
                  in
                  [ (q, v); (Prefix.make flipped l, v + 1) ]
                else [ (q, v) ])))
  in
  let arb_ops = make with_siblings in
  let build ops =
    ( List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops,
      List.fold_left (fun t (q, v) -> Ref_trie.add q v t) Ref_trie.empty ops )
  in
  let probes ops =
    Ipv4.of_int 0 :: Ipv4.of_int 0xFFFFFFFF
    :: List.concat_map
         (fun (q, _) ->
           [ Prefix.network q;
             Ipv4.of_int (Ipv4.to_int (Prefix.network q) lxor 1) ])
         ops
  in
  [ Test.make ~name:"compressed bindings = reference bindings" ~count:300
      arb_ops (fun ops ->
        let t, r = build ops in
        Trie.bindings t = Ref_trie.bindings r);
    Test.make ~name:"compressed longest_match/matches = reference" ~count:300
      arb_ops (fun ops ->
        let t, r = build ops in
        List.for_all
          (fun a ->
            Trie.longest_match a t = Ref_trie.longest_match a r
            && Trie.matches a t = Ref_trie.matches a r)
          (probes ops));
    Test.make ~name:"compressed covered = reference covered" ~count:300
      arb_ops (fun ops ->
        let t, r = build ops in
        Trie.covered Prefix.default t = Ref_trie.covered Prefix.default r
        && List.for_all
             (fun (q, _) -> Trie.covered q t = Ref_trie.covered q r)
             ops);
    Test.make ~name:"removal keeps agreeing (collapse paths)" ~count:300
      arb_ops (fun ops ->
        let t, r = build ops in
        (* Remove every other prefix: exercises the smart-constructor
           collapse of one-child interior nodes. *)
        let doomed = List.filteri (fun i _ -> i mod 2 = 0) ops in
        let t =
          List.fold_left (fun t (q, _) -> Trie.remove q t) t doomed
        in
        let r =
          List.fold_left (fun r (q, _) -> Ref_trie.remove q r) r doomed
        in
        Trie.bindings t = Ref_trie.bindings r
        && List.for_all
             (fun a -> Trie.longest_match a t = Ref_trie.longest_match a r)
             (probes ops));
    Test.make ~name:"update parity with reference" ~count:300 arb_ops
      (fun ops ->
        let t, r = build ops in
        let f = function None -> Some 999 | Some v -> if v mod 3 = 0 then None else Some (v + 1) in
        let t = List.fold_left (fun t (q, _) -> Trie.update q f t) t ops in
        let r = List.fold_left (fun r (q, _) -> Ref_trie.update q f r) r ops in
        Trie.bindings t = Ref_trie.bindings r
        && List.for_all
             (fun (q, _) -> Trie.find q t = Ref_trie.find q r)
             ops) ]

(* Model-based property tests against Prefix.Map and a linear scan. *)
let qcheck =
  let open QCheck in
  let genp =
    Gen.map
      (fun (net, len) -> Prefix.make (Ipv4.of_int (net lsl 12)) len)
      Gen.(pair (int_bound 0xFFFFF) (int_bound 20))
  in
  let arb_ops = make Gen.(list_size (int_range 0 60) (pair genp (int_bound 100))) in
  [ Test.make ~name:"trie agrees with Prefix.Map on add" ~count:200 arb_ops
      (fun ops ->
        let t = List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops in
        let m =
          List.fold_left (fun m (q, v) -> Prefix.Map.add q v m) Prefix.Map.empty ops
        in
        Trie.bindings t = Prefix.Map.bindings m);
    Test.make ~name:"longest_match agrees with linear scan" ~count:200
      (make Gen.(pair (list_size (int_range 0 40) (pair genp (int_bound 100))) (int_bound 0xFFFFFFF)))
      (fun (ops, addr_seed) ->
        let addr = Ipv4.of_int (addr_seed lsl 4) in
        let t = List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops in
        let m =
          List.fold_left (fun m (q, v) -> Prefix.Map.add q v m) Prefix.Map.empty ops
        in
        let linear =
          Prefix.Map.fold
            (fun q v acc ->
              if Prefix.mem addr q then
                match acc with
                | Some (q', _) when Prefix.length q' >= Prefix.length q -> acc
                | _ -> Some (q, v)
              else acc)
            m None
        in
        Trie.longest_match addr t = linear);
    Test.make ~name:"remove really removes" ~count:200 arb_ops (fun ops ->
        let t = List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops in
        List.for_all
          (fun (q, _) -> Trie.find q (Trie.remove q t) = None)
          ops) ]

let () =
  Alcotest.run "trie"
    [ ("basics",
       [ Alcotest.test_case "add/find" `Quick test_add_find;
         Alcotest.test_case "replace" `Quick test_replace;
         Alcotest.test_case "remove" `Quick test_remove;
         Alcotest.test_case "update" `Quick test_update ]);
      ("lookup",
       [ Alcotest.test_case "longest match" `Quick test_longest_match;
         Alcotest.test_case "matches order" `Quick test_matches_order;
         Alcotest.test_case "covered" `Quick test_covered ]);
      ("traversal",
       [ Alcotest.test_case "fold order" `Quick test_fold_order;
         Alcotest.test_case "map/filter" `Quick test_map_filter ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck);
      ( "vs-reference",
        List.map QCheck_alcotest.to_alcotest qcheck_vs_reference ) ]
