open Dbgp_types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------- Asn ------------------------- *)

let test_asn_bounds () =
  check_int "zero" 0 (Asn.to_int (Asn.of_int 0));
  check_int "max" 0xFFFF_FFFF (Asn.to_int (Asn.of_int 0xFFFF_FFFF));
  check "negative rejected" true (Asn.of_int_opt (-1) = None);
  check "too large rejected" true (Asn.of_int_opt 0x1_0000_0000 = None);
  Alcotest.check_raises "of_int raises" (Invalid_argument "Asn.of_int: -5 out of range")
    (fun () -> ignore (Asn.of_int (-5)))

let test_asn_strings () =
  check_int "plain" 65001 (Asn.to_int (Asn.of_string "65001"));
  check_int "asdot" ((1 lsl 16) lor 10) (Asn.to_int (Asn.of_string "1.10"));
  check_str "to_string" "65001" (Asn.to_string (Asn.of_int 65001));
  check "garbage" true (Asn.of_string_opt "x.y" = None);
  check "asdot overflow" true (Asn.of_string_opt "70000.1" = None)

let test_asn_reserved () =
  check "zero reserved" true (Asn.is_reserved Asn.zero);
  check "as_trans" true (Asn.is_reserved (Asn.of_int 23456));
  check "private16" true (Asn.is_private (Asn.of_int 64512));
  check "private32" true (Asn.is_private (Asn.of_int 4_200_000_000));
  check "normal not reserved" false (Asn.is_reserved (Asn.of_int 3356));
  check "private implies reserved" true (Asn.is_reserved (Asn.of_int 65000))

let test_asn_collections () =
  let s = Asn.Set.of_list [ Asn.of_int 3; Asn.of_int 1; Asn.of_int 3 ] in
  check_int "set dedup" 2 (Asn.Set.cardinal s);
  check "equal" true (Asn.equal (Asn.of_int 7) (Asn.of_int 7));
  check "compare" true (Asn.compare (Asn.of_int 1) (Asn.of_int 2) < 0)

(* ------------------------- Ipv4 ------------------------- *)

let test_ipv4_octets () =
  let a = Ipv4.of_octets 192 168 1 42 in
  check_str "to_string" "192.168.1.42" (Ipv4.to_string a);
  let x, y, z, w = Ipv4.to_octets a in
  check_int "o1" 192 x;
  check_int "o2" 168 y;
  check_int "o3" 1 z;
  check_int "o4" 42 w;
  Alcotest.check_raises "bad octet"
    (Invalid_argument "Ipv4.of_octets: octet out of range") (fun () ->
      ignore (Ipv4.of_octets 256 0 0 0))

let test_ipv4_strings () =
  check "roundtrip" true
    (Ipv4.equal (Ipv4.of_string "10.1.2.3") (Ipv4.of_octets 10 1 2 3));
  check "reject short" true (Ipv4.of_string_opt "10.1.2" = None);
  check "reject big octet" true (Ipv4.of_string_opt "10.1.2.300" = None);
  check "reject empty part" true (Ipv4.of_string_opt "10..2.3" = None);
  check "reject trailing" true (Ipv4.of_string_opt "1.2.3.4.5" = None)

let test_ipv4_succ_wraps () =
  check "succ" true
    (Ipv4.equal (Ipv4.succ (Ipv4.of_string "1.2.3.255")) (Ipv4.of_string "1.2.4.0"));
  check "wrap" true
    (Ipv4.equal (Ipv4.succ (Ipv4.of_string "255.255.255.255")) Ipv4.any)

let test_ipv4_int32 () =
  let a = Ipv4.of_string "255.0.0.1" in
  check "int32 roundtrip" true (Ipv4.equal (Ipv4.of_int32 (Ipv4.to_int32 a)) a)

(* ------------------------- Prefix ------------------------- *)

let test_prefix_canonical () =
  let p = Prefix.make (Ipv4.of_string "10.1.2.3") 8 in
  check_str "host bits zeroed" "10.0.0.0/8" (Prefix.to_string p);
  check "equal to clean" true (Prefix.equal p (Prefix.of_string "10.0.0.0/8"));
  Alcotest.check_raises "bad length" (Invalid_argument "Prefix.make: bad length 33")
    (fun () -> ignore (Prefix.make Ipv4.any 33))

let test_prefix_parse () =
  check "bare addr is /32" true
    (Prefix.equal (Prefix.of_string "1.2.3.4") (Prefix.make (Ipv4.of_string "1.2.3.4") 32));
  check "reject bad len" true (Prefix.of_string_opt "1.2.3.0/40" = None);
  check "reject junk" true (Prefix.of_string_opt "foo/8" = None)

let test_prefix_mem () =
  let p = Prefix.of_string "192.168.0.0/16" in
  check "inside" true (Prefix.mem (Ipv4.of_string "192.168.255.1") p);
  check "outside" false (Prefix.mem (Ipv4.of_string "192.169.0.1") p);
  check "default matches all" true (Prefix.mem (Ipv4.of_string "8.8.8.8") Prefix.default)

let test_prefix_subsumes () =
  let p8 = Prefix.of_string "10.0.0.0/8" and p16 = Prefix.of_string "10.1.0.0/16" in
  check "wider subsumes narrower" true (Prefix.subsumes p8 p16);
  check "narrower does not" false (Prefix.subsumes p16 p8);
  check "self" true (Prefix.subsumes p8 p8);
  check "disjoint" false (Prefix.subsumes p16 (Prefix.of_string "10.2.0.0/16"))

let test_prefix_split () =
  match Prefix.split (Prefix.of_string "10.0.0.0/8") with
  | None -> Alcotest.fail "should split"
  | Some (lo, hi) ->
    check_str "lo" "10.0.0.0/9" (Prefix.to_string lo);
    check_str "hi" "10.128.0.0/9" (Prefix.to_string hi);
    check "host unsplittable" true (Prefix.split (Prefix.of_string "1.2.3.4/32") = None)

let test_prefix_bit () =
  let p = Prefix.of_string "128.0.0.0/2" in
  check "bit 0" true (Prefix.bit p 0);
  check "bit 1" false (Prefix.bit p 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Prefix.bit: index out of range") (fun () ->
      ignore (Prefix.bit p 2))

(* ------------------------- Island_id ------------------------- *)

let test_island_ids () =
  check "singleton eq" true
    (Island_id.equal (Island_id.singleton (Asn.of_int 7)) (Island_id.singleton (Asn.of_int 7)));
  check "named vs singleton differ" false
    (Island_id.equal (Island_id.named "7") (Island_id.singleton (Asn.of_int 7)));
  check "hash order-insensitive" true
    (Island_id.equal
       (Island_id.of_border_asns [ Asn.of_int 1; Asn.of_int 2 ])
       (Island_id.of_border_asns [ Asn.of_int 2; Asn.of_int 1 ]));
  check "hash dedup" true
    (Island_id.equal
       (Island_id.of_border_asns [ Asn.of_int 1; Asn.of_int 1 ])
       (Island_id.of_border_asns [ Asn.of_int 1 ]));
  check_str "singleton renders as ASN" "7" (Island_id.to_string (Island_id.singleton (Asn.of_int 7)))

(* ------------------------- Protocol_id ------------------------- *)

let test_protocol_registry () =
  let p = Protocol_id.register ~kind:Protocol_id.Custom "test-proto-x" in
  let q = Protocol_id.register "test-proto-x" in
  check "idempotent" true (Protocol_id.equal p q);
  check "find" true (Protocol_id.find "test-proto-x" = Some p);
  check "by id" true (Protocol_id.of_int (Protocol_id.to_int p) = Some p);
  check "unknown" true (Protocol_id.find "never-registered-proto" = None)

let test_protocol_kinds () =
  check "bgp baseline" true (Protocol_id.kind Protocol_id.bgp = Protocol_id.Baseline);
  check "wiser fix" true (Protocol_id.kind Protocol_id.wiser = Protocol_id.Critical_fix);
  check "miro custom" true (Protocol_id.kind Protocol_id.miro = Protocol_id.Custom);
  check "scion replacement" true (Protocol_id.kind Protocol_id.scion = Protocol_id.Replacement);
  Alcotest.check_raises "reclassification rejected"
    (Invalid_argument "Protocol_id.register: bgp already registered") (fun () ->
      ignore (Protocol_id.register ~kind:Protocol_id.Replacement "bgp"))

let test_protocol_all () =
  let all = Protocol_id.all () in
  check "contains bgp" true (List.exists (Protocol_id.equal Protocol_id.bgp) all);
  (* Identity (and hence the enumeration order) is the registered name,
     never the registry number: id allocation order depends on which
     simulation domain first decoded a name, so it must stay invisible. *)
  check "sorted by name" true
    (List.for_all2
       (fun a b -> String.compare (Protocol_id.name a) (Protocol_id.name b) < 0)
       (List.filteri (fun i _ -> i < List.length all - 1) all)
       (List.tl all));
  check "compare follows names" true
    (List.for_all2
       (fun a b -> Protocol_id.compare a b < 0)
       (List.filteri (fun i _ -> i < List.length all - 1) all)
       (List.tl all))

(* ------------------------- Path_elem ------------------------- *)

let test_path_elem_loops () =
  let a n = Path_elem.As (Asn.of_int n) in
  check "no loop" false (Path_elem.has_loop [ a 1; a 2; a 3 ]);
  check "as loop" true (Path_elem.has_loop [ a 1; a 2; a 1 ]);
  check "island loop" true
    (Path_elem.has_loop
       [ Path_elem.Island (Island_id.named "X"); a 1; Path_elem.Island (Island_id.named "X") ]);
  check "set loop" true
    (Path_elem.has_loop [ a 1; Path_elem.as_set [ Asn.of_int 1; Asn.of_int 9 ] ]);
  check "set no loop" false
    (Path_elem.has_loop [ a 1; Path_elem.as_set [ Asn.of_int 2; Asn.of_int 3 ] ])

let test_path_elem_length () =
  let a n = Path_elem.As (Asn.of_int n) in
  check_int "set counts once" 3
    (Path_elem.path_length [ a 1; Path_elem.as_set [ Asn.of_int 2; Asn.of_int 3 ]; a 4 ])

let test_path_elem_canon () =
  match Path_elem.as_set [ Asn.of_int 3; Asn.of_int 1; Asn.of_int 3 ] with
  | Path_elem.As_set s ->
    check_int "sorted dedup" 2 (List.length s);
    check "sorted" true (List.map Asn.to_int s = [ 1; 3 ])
  | _ -> Alcotest.fail "expected As_set"

(* ------------------------- Prng ------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 11 and b = Prng.create 11 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check "same seed same stream" true (xs = ys);
  let c = Prng.create 12 in
  let zs = List.init 20 (fun _ -> Prng.int c 1000) in
  check "different seed differs" false (xs = zs)

let test_prng_bounds () =
  let t = Prng.create 5 in
  for _ = 1 to 500 do
    let v = Prng.int t 7 in
    check "in range" true (v >= 0 && v < 7);
    let w = Prng.int_in t 3 9 in
    check "int_in range" true (w >= 3 && w <= 9);
    let f = Prng.float t 2.5 in
    check "float range" true (f >= 0. && f < 2.5)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_shuffle_sample () =
  let t = Prng.create 99 in
  let arr = Array.init 50 Fun.id in
  let copy = Array.copy arr in
  Prng.shuffle t copy;
  check "permutation" true
    (List.sort compare (Array.to_list copy) = Array.to_list arr);
  let s = Prng.sample t 10 arr in
  check_int "sample size" 10 (Array.length s);
  check "distinct" true
    (List.length (List.sort_uniq compare (Array.to_list s)) = 10);
  Alcotest.check_raises "oversample" (Invalid_argument "Prng.sample: bad k")
    (fun () -> ignore (Prng.sample t 51 arr))

let test_prng_split () =
  let t = Prng.create 4 in
  let u = Prng.split t in
  let xs = List.init 10 (fun _ -> Prng.int t 100) in
  let ys = List.init 10 (fun _ -> Prng.int u 100) in
  check "split streams differ" false (xs = ys);
  (* Children are a pure function of the parent's seed and position:
     replaying the same seed reproduces both streams exactly. *)
  let t' = Prng.create 4 in
  let u' = Prng.split t' in
  check "replayed parent stream" true
    (xs = List.init 10 (fun _ -> Prng.int t' 100));
  check "replayed child stream" true
    (ys = List.init 10 (fun _ -> Prng.int u' 100));
  (* Splitting perturbs the parent: an unsplit generator with the same
     seed produces a different stream. *)
  let v = Prng.create 4 in
  check "split advances parent" false
    (xs = List.init 10 (fun _ -> Prng.int v 100))

let test_prng_split_n () =
  let draws g = List.init 8 (fun _ -> Prng.int g 1_000_000) in
  (* split_n = n successive splits, including the parent's final state. *)
  let a = Prng.create 7 and b = Prng.create 7 in
  let kids = Prng.split_n a 4 in
  let kids' = Array.init 4 (fun _ -> Prng.split b) in
  Array.iteri
    (fun i k -> check "split_n = iterated split" true (draws k = draws kids'.(i)))
    kids;
  check "parent advanced identically" true (draws a = draws b);
  (* Streams are pairwise independent-looking: no two children (or the
     parent) share a stream. *)
  let streams = draws a :: Array.to_list (Array.map draws (Prng.split_n a 6)) in
  check_int "all streams distinct" (List.length streams)
    (List.length (List.sort_uniq compare streams));
  check_int "zero children" 0 (Array.length (Prng.split_n a 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Prng.split_n: negative count") (fun () ->
      ignore (Prng.split_n a (-1)))

(* ------------------------- properties ------------------------- *)

let qcheck =
  let open QCheck in
  [ Test.make ~name:"prefix string roundtrip" ~count:300
      (pair (int_bound 0xFFFFFF) (int_bound 32))
      (fun (net, len) ->
        let p = Prefix.make (Ipv4.of_int (net lsl 8)) len in
        Prefix.equal p (Prefix.of_string (Prefix.to_string p)));
    Test.make ~name:"subsumes implies mem of network" ~count:300
      (pair (int_bound 0xFFFFFF) (int_bound 24))
      (fun (net, len) ->
        let p = Prefix.make (Ipv4.of_int (net lsl 8)) len in
        Prefix.mem (Prefix.network p) p);
    Test.make ~name:"asn string roundtrip" ~count:300 (int_bound 0xFFFF_FFF)
      (fun n -> Asn.to_int (Asn.of_string (Asn.to_string (Asn.of_int n))) = n);
    Test.make ~name:"ipv4 string roundtrip" ~count:300 (int_bound 0xFFFF_FFF)
      (fun n ->
        let a = Ipv4.of_int n in
        Ipv4.equal a (Ipv4.of_string (Ipv4.to_string a)));
    Test.make ~name:"path without dup ASes has no loop" ~count:200
      (list_of_size (Gen.int_range 0 8) (int_bound 100000))
      (fun ns ->
        let uniq = List.sort_uniq compare ns in
        not (Path_elem.has_loop (List.map (fun n -> Path_elem.As (Asn.of_int n)) uniq))) ]

let () =
  Alcotest.run "types"
    [ ("asn",
       [ Alcotest.test_case "bounds" `Quick test_asn_bounds;
         Alcotest.test_case "strings" `Quick test_asn_strings;
         Alcotest.test_case "reserved" `Quick test_asn_reserved;
         Alcotest.test_case "collections" `Quick test_asn_collections ]);
      ("ipv4",
       [ Alcotest.test_case "octets" `Quick test_ipv4_octets;
         Alcotest.test_case "strings" `Quick test_ipv4_strings;
         Alcotest.test_case "succ" `Quick test_ipv4_succ_wraps;
         Alcotest.test_case "int32" `Quick test_ipv4_int32 ]);
      ("prefix",
       [ Alcotest.test_case "canonical" `Quick test_prefix_canonical;
         Alcotest.test_case "parse" `Quick test_prefix_parse;
         Alcotest.test_case "mem" `Quick test_prefix_mem;
         Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
         Alcotest.test_case "split" `Quick test_prefix_split;
         Alcotest.test_case "bit" `Quick test_prefix_bit ]);
      ("island-id", [ Alcotest.test_case "identity" `Quick test_island_ids ]);
      ("protocol-id",
       [ Alcotest.test_case "registry" `Quick test_protocol_registry;
         Alcotest.test_case "kinds" `Quick test_protocol_kinds;
         Alcotest.test_case "all" `Quick test_protocol_all ]);
      ("path-elem",
       [ Alcotest.test_case "loops" `Quick test_path_elem_loops;
         Alcotest.test_case "length" `Quick test_path_elem_length;
         Alcotest.test_case "canonical sets" `Quick test_path_elem_canon ]);
      ("prng",
       [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
         Alcotest.test_case "bounds" `Quick test_prng_bounds;
         Alcotest.test_case "shuffle/sample" `Quick test_prng_shuffle_sample;
         Alcotest.test_case "split" `Quick test_prng_split;
         Alcotest.test_case "split_n" `Quick test_prng_split_n ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
