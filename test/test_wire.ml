open Dbgp_types
module W = Dbgp_wire.Writer
module R = Dbgp_wire.Reader

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip write read v =
  let w = W.create () in
  write w v;
  read (R.of_string (W.contents w))

let test_fixed_width () =
  check_int "u8" 200 (roundtrip W.u8 R.u8 200);
  check_int "u16" 0xBEEF (roundtrip W.u16 R.u16 0xBEEF);
  check_int "u32" 0xDEADBEEF (roundtrip W.u32 R.u32 0xDEADBEEF);
  Alcotest.check_raises "u8 range" (Invalid_argument "Writer.u8: out of range")
    (fun () -> ignore (roundtrip W.u8 R.u8 256));
  Alcotest.check_raises "u16 range" (Invalid_argument "Writer.u16: out of range")
    (fun () -> ignore (roundtrip W.u16 R.u16 (-1)))

let test_varint () =
  List.iter
    (fun n -> check_int (string_of_int n) n (roundtrip W.varint R.varint n))
    [ 0; 1; 127; 128; 300; 16383; 16384; 1_000_000; 1 lsl 40 ];
  Alcotest.check_raises "negative" (Invalid_argument "Writer.varint: negative")
    (fun () -> ignore (roundtrip W.varint R.varint (-1)))

let test_varint_encoding_size () =
  let size n =
    let w = W.create () in
    W.varint w n;
    W.length w
  in
  check_int "1 byte" 1 (size 127);
  check_int "2 bytes" 2 (size 128);
  check_int "3 bytes" 3 (size 16384)

let test_strings () =
  Alcotest.(check string) "delimited" "hello" (roundtrip W.delimited R.delimited "hello");
  Alcotest.(check string) "empty" "" (roundtrip W.delimited R.delimited "");
  let w = W.create () in
  W.bytes w "abc";
  let r = R.of_string (W.contents w) in
  Alcotest.(check string) "raw bytes" "abc" (R.bytes r 3);
  check "at end" true (R.at_end r)

let test_network_types () =
  let a = Ipv4.of_string "203.0.113.7" in
  check "ipv4" true (Ipv4.equal a (roundtrip W.ipv4 R.ipv4 a));
  let asn = Asn.of_int 4_200_000_001 in
  check "asn 4-byte" true (Asn.equal asn (roundtrip W.asn R.asn asn));
  List.iter
    (fun s ->
      let p = Prefix.of_string s in
      check s true (Prefix.equal p (roundtrip W.prefix R.prefix p)))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "192.168.4.0/22"; "1.2.3.4/32"; "128.0.0.0/1" ]

let test_prefix_compactness () =
  (* NLRI-style: /8 needs 1 address octet, /32 needs 4. *)
  let size s =
    let w = W.create () in
    W.prefix w (Prefix.of_string s);
    W.length w
  in
  check_int "/8" 2 (size "10.0.0.0/8");
  check_int "/16" 3 (size "10.1.0.0/16");
  check_int "/32" 5 (size "1.2.3.4/32");
  check_int "/0" 1 (size "0.0.0.0/0")

let test_lists () =
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let ys = roundtrip (fun w -> W.list w W.varint) (fun r -> R.list r R.varint) xs in
  check "list roundtrip" true (xs = ys);
  check "empty list" true
    ([] = roundtrip (fun w -> W.list w W.varint) (fun r -> R.list r R.varint) [])

let test_errors () =
  let truncated f s = try ignore (f (R.of_string s)); false with R.Error _ -> true in
  check "u8 empty" true (truncated R.u8 "");
  check "u32 short" true (truncated R.u32 "ab");
  check "delimited short" true (truncated R.delimited "\x05ab");
  check "prefix bad len" true (truncated R.prefix "\x2a");
  check "list count too big" true
    (truncated (fun r -> R.list r R.u8) "\x7fab");
  check "varint overlong" true
    (truncated R.varint "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")

(* Hardening: the 9th varint byte lands at shift 56, where OCaml's int
   has only 6 value bits left — anything above 0x3F would wrap into the
   sign bit and come back negative. *)
let test_varint_overflow () =
  let rejected s = try ignore (R.varint (R.of_string s)); false with R.Error _ -> true in
  check_int "max_int roundtrips" max_int (roundtrip W.varint R.varint max_int);
  check_int "0 roundtrips" 0 (roundtrip W.varint R.varint 0);
  (* 8 continuation bytes of zero payload then 0x7F: 0x7F lsl 56 would be
     negative. *)
  check "9th byte 0x7f rejected" true
    (rejected "\x80\x80\x80\x80\x80\x80\x80\x80\x7f");
  check "9th byte 0xff rejected" true
    (rejected "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x00");
  (* 0x40 is the first payload that no longer fits (max_int's top byte is
     0x3F); 0x3F itself is the boundary and must decode. *)
  check "9th byte 0x40 rejected" true
    (rejected "\xff\xff\xff\xff\xff\xff\xff\xff\x40");
  check_int "9th byte 0x3f accepted" max_int
    (R.varint (R.of_string "\xff\xff\xff\xff\xff\xff\xff\xff\x3f"));
  (* Non-canonical: a continuation byte followed by zero decodes to the
     same value as the short form and must be rejected. *)
  check "0x80 0x00 rejected" true (rejected "\x80\x00");
  check "0xff 0x00 rejected" true (rejected "\xff\x00");
  check "0x80 0x80 0x00 rejected" true (rejected "\x80\x80\x00")

(* Hardening: stray bits inside the last prefix octet used to be silently
   masked off by Prefix.make, so two different byte strings decoded to the
   same prefix. *)
let test_prefix_noncanonical () =
  let rejected s = try ignore (R.prefix (R.of_string s)); false with R.Error _ -> true in
  check "/4 with host bits" true (rejected "\x04\xff");
  check "/30 with host bits" true (rejected "\x1e\x01\x02\x03\xff");
  check "/8 with second octet" false (rejected "\x08\x0a");
  check "/0 canonical" false (rejected "\x00");
  check "canonical /4" true
    (Prefix.equal (Prefix.of_string "240.0.0.0/4") (R.prefix (R.of_string "\x04\xf0")))

(* Hardening: the list-count guard scales with the caller's minimum
   element width, so a count that fits "1 byte each" no longer passes for
   4-byte elements. *)
let test_list_count_bombs () =
  let rejected ?min_width f s =
    try ignore (R.list ?min_width (R.of_string s) f); false with R.Error _ -> true
  in
  (* count 1000, empty payload *)
  let bomb =
    let w = W.create () in
    W.varint w 1000;
    W.contents w
  in
  check "u8 bomb" true (rejected R.u8 bomb);
  check "u32 bomb" true (rejected ~min_width:4 R.u32 bomb);
  (* count 3 with 3 bytes left: passes the default guard, not the 4-byte
     one. *)
  let tight =
    let w = W.create () in
    W.varint w 3;
    W.bytes w "abc";
    W.contents w
  in
  check "3 u8s fit" false (rejected R.u8 tight);
  check "3 u32s cannot fit" true (rejected ~min_width:4 R.u32 tight);
  Alcotest.check_raises "min_width 0"
    (Invalid_argument "Reader.list: min_width must be positive") (fun () ->
      ignore (R.list ~min_width:0 (R.of_string "\x00") R.u8))

let test_reader_positions () =
  let r = R.of_string "abcdef" in
  check_int "pos 0" 0 (R.pos r);
  ignore (R.bytes r 2);
  check_int "pos 2" 2 (R.pos r);
  check_int "remaining" 4 (R.remaining r)

let test_writer_reset () =
  let w = W.create () in
  W.u32 w 42;
  check_int "len before" 4 (W.length w);
  W.reset w;
  check_int "len after" 0 (W.length w)

(* ------------------------- compression ------------------------- *)

module C = Dbgp_wire.Compress

let test_compress_roundtrip_basics () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (C.decompress (C.compress s)))
    [ ""; "x"; "abcabcabcabcabcabc"; String.make 5000 'q';
      String.init 3000 (fun i -> Char.chr (i * 7 mod 256));
      "no repetition here at all, or almost" ]

let test_compress_shrinks_repetitive () =
  let s = String.concat "" (List.init 200 (fun _ -> "wiser-cost=100;")) in
  check "repetitive input shrinks a lot" true
    (String.length (C.compress s) < String.length s / 4);
  check "ratio reported" true (C.ratio s < 0.25);
  check "empty ratio is 1" true (C.ratio "" = 1.)

let test_compress_bounded_expansion () =
  (* worst case: high-entropy input *)
  let s = String.init 4096 (fun i -> Char.chr ((i * 167 + (i * i mod 253)) mod 256)) in
  check "expansion bounded" true
    (String.length (C.compress s) <= (String.length s * 9 / 8) + 8)

let test_compress_malformed () =
  let bad s = try ignore (C.decompress s); false with Invalid_argument _ -> true in
  check "empty" true (bad "");
  check "bad version" true (bad "\x09\x00\x00\x00\x05abcde");
  check "truncated body" true
    (bad (String.sub (C.compress (String.make 100 'z')) 0 8));
  check "length lies" true
    (bad ("\x01\x00\x00\xff\xff" ^ "\xff" ^ "ab"))

let qcheck =
  let open QCheck in
  [ Test.make ~name:"compress roundtrip" ~count:300 string (fun s ->
        C.decompress (C.compress s) = s);
    Test.make ~name:"compress roundtrip on repetitive strings" ~count:100
      (pair small_string (int_range 1 100))
      (fun (chunk, reps) ->
        let s = String.concat "" (List.init reps (fun _ -> chunk)) in
        C.decompress (C.compress s) = s);
    Test.make ~name:"decompress never crashes unexpectedly" ~count:300 string
      (fun s ->
        match C.decompress s with
        | _ -> true
        | exception Invalid_argument _ -> true);
    Test.make ~name:"varint roundtrip" ~count:500 (int_bound max_int) (fun n ->
        roundtrip W.varint R.varint n = n);
    Test.make ~name:"varint edge values roundtrip" ~count:100
      (oneofl [ 0; 1; 127; 128; max_int - 1; max_int; 1 lsl 56; (1 lsl 56) - 1 ])
      (fun n -> roundtrip W.varint R.varint n = n);
    Test.make ~name:"prefix roundtrip (canonicalized)" ~count:300
      (pair (int_bound 0xFFFF_FFFF) (int_bound 32))
      (fun (addr, len) ->
        (* Prefix.make masks host bits, so the written form is canonical
           and must survive the reader's strictness. *)
        let p = Prefix.make (Ipv4.of_int addr) len in
        Prefix.equal p (roundtrip W.prefix R.prefix p));
    Test.make ~name:"delimited roundtrip" ~count:300 string (fun s ->
        roundtrip W.delimited R.delimited s = s);
    Test.make ~name:"u32 roundtrip" ~count:300 (int_bound 0xFFFF_FFFF) (fun n ->
        roundtrip W.u32 R.u32 n = n);
    Test.make ~name:"concatenated fields decode in order" ~count:200
      (pair (int_bound 1000000) string) (fun (n, s) ->
        let w = W.create () in
        W.varint w n;
        W.delimited w s;
        let r = R.of_string (W.contents w) in
        R.varint r = n && R.delimited r = s && R.at_end r) ]

let () =
  Alcotest.run "wire"
    [ ("fixed-width", [ Alcotest.test_case "u8/u16/u32" `Quick test_fixed_width ]);
      ("varint",
       [ Alcotest.test_case "roundtrip" `Quick test_varint;
         Alcotest.test_case "sizes" `Quick test_varint_encoding_size ]);
      ("strings", [ Alcotest.test_case "delimited" `Quick test_strings ]);
      ("network",
       [ Alcotest.test_case "ipv4/asn/prefix" `Quick test_network_types;
         Alcotest.test_case "prefix compactness" `Quick test_prefix_compactness ]);
      ("lists", [ Alcotest.test_case "roundtrip" `Quick test_lists ]);
      ("compress",
       [ Alcotest.test_case "roundtrip basics" `Quick test_compress_roundtrip_basics;
         Alcotest.test_case "shrinks repetitive" `Quick test_compress_shrinks_repetitive;
         Alcotest.test_case "bounded expansion" `Quick test_compress_bounded_expansion;
         Alcotest.test_case "malformed" `Quick test_compress_malformed ]);
      ("errors",
       [ Alcotest.test_case "malformed input" `Quick test_errors;
         Alcotest.test_case "positions" `Quick test_reader_positions;
         Alcotest.test_case "reset" `Quick test_writer_reset ]);
      ("hardening",
       [ Alcotest.test_case "varint overflow" `Quick test_varint_overflow;
         Alcotest.test_case "non-canonical prefix" `Quick test_prefix_noncanonical;
         Alcotest.test_case "list-count bombs" `Quick test_list_count_bombs ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
